"""Recursive-descent parser for the supported SQL dialect.

Grammar highlights (beyond ordinary SQL):

* ``WITH ITERATIVE name [(cols)] AS ( init ITERATE step UNTIL tc ) final``
  — the paper's iterative-CTE extension.
* Termination conditions (``tc``):
  ``N ITERATIONS`` | ``N UPDATES`` | ``DELTA <op> N`` |
  ``[ANY] expr`` | ``ALL expr``.
* Derived tables may omit their alias (Fig. 2 of the paper does), in which
  case the binder synthesizes one.
"""

from __future__ import annotations

from typing import Optional

from ..errors import SqlSyntaxError
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenType

# Keywords that may *not* be used as bare aliases (they would swallow the
# following clause).
_NON_ALIAS_KEYWORDS = frozenset({
    "from", "where", "group", "having", "order", "limit", "offset", "on",
    "join", "inner", "left", "right", "full", "cross", "union", "as",
    "except", "intersect",
    "iterate", "until", "set", "values", "when", "then", "else", "end",
    "and", "or", "not", "asc", "desc",
})


class Parser:
    """Parses one statement or a ';'-separated script."""

    def __init__(self, text: str):
        self._text = text
        self._tokens = tokenize(text)
        self._index = 0

    # -- public entry points -------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        statement = self._parse_statement()
        self._accept_punct(";")
        self._expect_eof()
        return statement

    def parse_script(self) -> list[ast.Statement]:
        statements = []
        while not self._at_eof():
            if self._accept_punct(";"):
                continue
            statements.append(self._parse_statement())
            if not self._accept_punct(";") and not self._at_eof():
                raise self._error("expected ';' between statements")
        return statements

    # -- token stream helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _at_eof(self) -> bool:
        return self._peek().type is TokenType.EOF

    def _error(self, message: str) -> SqlSyntaxError:
        token = self._peek()
        seen = token.text or "<end of input>"
        return SqlSyntaxError(f"{message} (found {seen!r})",
                              line=token.line, column=token.column)

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._peek().is_keyword(*words):
            return self._advance()
        return None

    def _expect_keyword(self, *words: str) -> Token:
        token = self._accept_keyword(*words)
        if token is None:
            raise self._error(f"expected {' or '.join(w.upper() for w in words)}")
        return token

    def _accept_punct(self, text: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCTUATION and token.text == text:
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> None:
        if not self._accept_punct(text):
            raise self._error(f"expected {text!r}")

    def _accept_operator(self, *ops: str) -> Optional[Token]:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text in ops:
            return self._advance()
        return None

    def _expect_identifier(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return token.text
        # Allow non-clause keywords as identifiers (e.g. a column named
        # "delta" or "key", which the paper's queries use).
        if (token.type is TokenType.KEYWORD
                and token.text.lower() not in _NON_ALIAS_KEYWORDS
                and not token.is_keyword("select")):
            self._advance()
            return token.text
        raise self._error(f"expected {what}")

    def _expect_eof(self) -> None:
        if not self._at_eof():
            raise self._error("unexpected trailing input")

    def _expect_integer(self) -> int:
        token = self._peek()
        if token.type is TokenType.NUMBER and "." not in token.text \
                and "e" not in token.text.lower():
            self._advance()
            return int(token.text)
        raise self._error("expected integer literal")

    # -- statements ------------------------------------------------------------

    def _parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("explain"):
            self._advance()
            return ast.Explain(self._parse_statement())
        if token.is_keyword("select", "with") or (
                token.type is TokenType.PUNCTUATION and token.text == "("):
            return self._parse_select_like()
        if token.is_keyword("create"):
            return self._parse_create_table()
        if token.is_keyword("drop"):
            return self._parse_drop_table()
        if token.is_keyword("insert"):
            return self._parse_insert()
        if token.is_keyword("update"):
            return self._parse_update()
        if token.is_keyword("delete"):
            return self._parse_delete()
        if token.is_keyword("analyze"):
            self._advance()
            table = None
            next_token = self._peek()
            if next_token.type is TokenType.IDENTIFIER or (
                    next_token.type is TokenType.KEYWORD
                    and next_token.text.lower() not in _NON_ALIAS_KEYWORDS):
                table = self._expect_identifier("table name")
            return ast.Analyze(table)
        if token.is_keyword("begin"):
            self._advance()
            self._accept_keyword("transaction")
            return ast.BeginTransaction()
        if token.is_keyword("commit"):
            self._advance()
            self._accept_keyword("transaction")
            return ast.CommitTransaction()
        if token.is_keyword("rollback"):
            self._advance()
            self._accept_keyword("transaction")
            return ast.RollbackTransaction()
        raise self._error("expected a statement")

    # -- SELECT / set operations ------------------------------------------------

    def _parse_select_like(self) -> ast.SelectLike:
        with_clause = self._parse_with_clause()
        query = self._parse_set_expr()
        order_by = self._parse_order_by()
        limit, offset = self._parse_limit_offset()
        query.with_clause = with_clause
        if order_by:
            query.order_by = order_by
        if limit is not None:
            query.limit = limit
        if offset is not None:
            query.offset = offset
        return query

    def _parse_with_clause(self) -> Optional[ast.WithClause]:
        if not self._accept_keyword("with"):
            return None
        recursive = bool(self._accept_keyword("recursive"))
        iterative = bool(self._accept_keyword("iterative"))
        ctes: list[ast.CteDefinition] = []
        while True:
            ctes.append(self._parse_cte(recursive, iterative))
            if not self._accept_punct(","):
                break
            # Each additional CTE may restate its own flavour.
            recursive = bool(self._accept_keyword("recursive"))
            iterative = bool(self._accept_keyword("iterative"))
        return ast.WithClause(ctes)

    def _parse_cte(self, recursive: bool,
                   iterative: bool) -> ast.CteDefinition:
        name = self._expect_identifier("CTE name")
        columns = None
        if self._accept_punct("("):
            columns = [self._expect_identifier("column name")]
            while self._accept_punct(","):
                columns.append(self._expect_identifier("column name"))
            self._expect_punct(")")
        self._expect_keyword("as")
        self._expect_punct("(")
        body = self._parse_select_like()
        if iterative or self._peek().is_keyword("iterate"):
            self._expect_keyword("iterate")
            step = self._parse_select_like()
            self._expect_keyword("until")
            termination = self._parse_termination()
            self._expect_punct(")")
            return ast.IterativeCte(name=name, init=body, step=step,
                                    termination=termination, columns=columns)
        self._expect_punct(")")
        return ast.CommonTableExpr(name=name, query=body, columns=columns,
                                   recursive=recursive)

    def _parse_termination(self) -> ast.Termination:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            count = self._expect_integer()
            if self._accept_keyword("iterations"):
                return ast.Termination(ast.TerminationKind.ITERATIONS,
                                       count=count)
            if self._accept_keyword("updates"):
                return ast.Termination(ast.TerminationKind.UPDATES,
                                       count=count)
            raise self._error("expected ITERATIONS or UPDATES")
        if token.is_keyword("delta"):
            # Disambiguate the DELTA termination keyword from a data
            # condition over a column named "delta": a comparison operator
            # followed by an integer literal means the termination form.
            next_token = self._peek(1)
            after = self._peek(2)
            is_delta_form = (next_token.type is TokenType.OPERATOR
                             and next_token.text in ("=", "<", "<=", ">", ">=")
                             and after.type is TokenType.NUMBER
                             and "." not in after.text
                             and "e" not in after.text.lower())
            if is_delta_form:
                self._advance()
                comparator = self._advance().text
                count = self._expect_integer()
                return ast.Termination(ast.TerminationKind.DELTA,
                                       count=count, comparator=comparator)
        if self._accept_keyword("all"):
            expr = self._parse_expression()
            return ast.Termination(ast.TerminationKind.DATA_ALL, expr=expr)
        self._accept_keyword("any")
        expr = self._parse_expression()
        return ast.Termination(ast.TerminationKind.DATA_ANY, expr=expr)

    def _parse_set_expr(self) -> ast.SelectLike:
        left = self._parse_intersect_expr()
        while self._peek().is_keyword("union", "except"):
            token = self._advance()
            if token.is_keyword("union"):
                kind = (ast.SetOpKind.UNION_ALL
                        if self._accept_keyword("all")
                        else ast.SetOpKind.UNION)
            else:
                kind = ast.SetOpKind.EXCEPT
            right = self._parse_intersect_expr()
            left = ast.SetOp(kind=kind, left=left, right=right)
        return left

    def _parse_intersect_expr(self) -> ast.SelectLike:
        left = self._parse_select_core()
        while self._peek().is_keyword("intersect"):
            self._advance()
            right = self._parse_select_core()
            left = ast.SetOp(kind=ast.SetOpKind.INTERSECT, left=left,
                             right=right)
        return left

    def _parse_select_core(self) -> ast.SelectLike:
        if self._accept_punct("("):
            inner = self._parse_select_like()
            self._expect_punct(")")
            return inner
        self._expect_keyword("select")
        distinct = bool(self._accept_keyword("distinct"))
        self._accept_keyword("all")
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        from_clause = None
        if self._accept_keyword("from"):
            from_clause = self._parse_from_clause()
        where = None
        if self._accept_keyword("where"):
            where = self._parse_expression()
        group_by: list[ast.Expr] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._parse_expression())
            while self._accept_punct(","):
                group_by.append(self._parse_expression())
        having = None
        if self._accept_keyword("having"):
            having = self._parse_expression()
        return ast.Select(items=items, from_clause=from_clause, where=where,
                          group_by=group_by, having=having, distinct=distinct)

    def _parse_select_item(self) -> ast.SelectItem:
        if self._peek().type is TokenType.OPERATOR \
                and self._peek().text == "*":
            self._advance()
            return ast.SelectItem(ast.Star())
        expr = self._parse_expression()
        alias = self._parse_alias()
        # `t.*` arrives as ColumnRef(t, "*")? No — handled in primary.
        return ast.SelectItem(expr, alias)

    def _parse_alias(self) -> Optional[str]:
        if self._accept_keyword("as"):
            return self._expect_identifier("alias")
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return token.text
        if (token.type is TokenType.KEYWORD
                and token.text.lower() not in _NON_ALIAS_KEYWORDS
                and not token.is_keyword("select", "create", "insert",
                                         "update", "delete", "drop",
                                         "iterate", "until")):
            self._advance()
            return token.text
        return None

    def _parse_order_by(self) -> list[ast.OrderItem]:
        if not self._accept_keyword("order"):
            return []
        self._expect_keyword("by")
        items = [self._parse_order_item()]
        while self._accept_punct(","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expression()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return ast.OrderItem(expr, ascending)

    def _parse_limit_offset(self) -> tuple[Optional[int], Optional[int]]:
        limit = offset = None
        if self._accept_keyword("limit"):
            limit = self._expect_integer()
        if self._accept_keyword("offset"):
            offset = self._expect_integer()
        return limit, offset

    # -- FROM clause --------------------------------------------------------------

    def _parse_from_clause(self) -> ast.Relation:
        relation = self._parse_table_factor()
        while True:
            if self._accept_punct(","):
                right = self._parse_table_factor()
                relation = ast.Join(ast.JoinKind.CROSS, relation, right)
                continue
            kind = self._parse_join_kind()
            if kind is None:
                return relation
            right = self._parse_table_factor()
            condition = None
            if kind is not ast.JoinKind.CROSS:
                self._expect_keyword("on")
                condition = self._parse_expression()
            relation = ast.Join(kind, relation, right, condition)

    def _parse_join_kind(self) -> Optional[ast.JoinKind]:
        token = self._peek()
        if token.is_keyword("join"):
            self._advance()
            return ast.JoinKind.INNER
        if token.is_keyword("inner"):
            self._advance()
            self._expect_keyword("join")
            return ast.JoinKind.INNER
        if token.is_keyword("left"):
            self._advance()
            self._accept_keyword("outer")
            self._expect_keyword("join")
            return ast.JoinKind.LEFT
        if token.is_keyword("right"):
            self._advance()
            self._accept_keyword("outer")
            self._expect_keyword("join")
            return ast.JoinKind.RIGHT
        if token.is_keyword("full"):
            self._advance()
            self._accept_keyword("outer")
            self._expect_keyword("join")
            return ast.JoinKind.FULL
        if token.is_keyword("cross"):
            self._advance()
            self._expect_keyword("join")
            return ast.JoinKind.CROSS
        return None

    def _parse_table_factor(self) -> ast.Relation:
        if self._accept_punct("("):
            # Either a derived table or a parenthesised join tree.
            if self._peek().is_keyword("select", "with"):
                query = self._parse_select_like()
                self._expect_punct(")")
                alias = self._parse_alias()
                return ast.SubqueryRef(query, alias)
            relation = self._parse_from_clause()
            self._expect_punct(")")
            return relation
        name = self._expect_identifier("table name")
        alias = self._parse_alias()
        return ast.TableRef(name, alias)

    # -- expressions -----------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._accept_keyword("or"):
            right = self._parse_and()
            left = ast.BinaryOp(ast.BinaryOperator.OR, left, right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._accept_keyword("and"):
            right = self._parse_not()
            left = ast.BinaryOp(ast.BinaryOperator.AND, left, right)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._accept_keyword("not"):
            operand = self._parse_not()
            if isinstance(operand, ast.ExistsExpr):
                return ast.ExistsExpr(operand.query, not operand.negated)
            return ast.UnaryOp(ast.UnaryOperator.NOT, operand)
        return self._parse_comparison()

    _COMPARISONS = {
        "=": ast.BinaryOperator.EQ,
        "<>": ast.BinaryOperator.NE,
        "!=": ast.BinaryOperator.NE,
        "<": ast.BinaryOperator.LT,
        "<=": ast.BinaryOperator.LE,
        ">": ast.BinaryOperator.GT,
        ">=": ast.BinaryOperator.GE,
    }

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        token = self._accept_operator(*self._COMPARISONS)
        if token is not None:
            right = self._parse_additive()
            return ast.BinaryOp(self._COMPARISONS[token.text], left, right)
        if self._peek().is_keyword("is"):
            self._advance()
            negated = bool(self._accept_keyword("not"))
            self._expect_keyword("null")
            return ast.IsNull(left, negated)
        negated = bool(self._accept_keyword("not"))
        if self._accept_keyword("in"):
            self._expect_punct("(")
            if self._peek().is_keyword("select", "with"):
                query = self._parse_select_like()
                self._expect_punct(")")
                return ast.InSubquery(left, query, negated)
            items = [self._parse_expression()]
            while self._accept_punct(","):
                items.append(self._parse_expression())
            self._expect_punct(")")
            return ast.InList(left, tuple(items), negated)
        if self._accept_keyword("between"):
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        if self._accept_keyword("like"):
            pattern = self._parse_additive()
            node = ast.BinaryOp(ast.BinaryOperator.LIKE, left, pattern)
            return ast.UnaryOp(ast.UnaryOperator.NOT, node) if negated \
                else node
        if negated:
            raise self._error("expected IN, BETWEEN or LIKE after NOT")
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._accept_operator("+", "-", "||")
            if token is None:
                return left
            op = {"+": ast.BinaryOperator.ADD,
                  "-": ast.BinaryOperator.SUB,
                  "||": ast.BinaryOperator.CONCAT}[token.text]
            right = self._parse_multiplicative()
            left = ast.BinaryOp(op, left, right)

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._accept_operator("*", "/", "%")
            if token is None:
                return left
            op = {"*": ast.BinaryOperator.MUL,
                  "/": ast.BinaryOperator.DIV,
                  "%": ast.BinaryOperator.MOD}[token.text]
            right = self._parse_unary()
            left = ast.BinaryOp(op, left, right)

    def _parse_unary(self) -> ast.Expr:
        token = self._accept_operator("-", "+")
        if token is not None:
            operand = self._parse_unary()
            op = (ast.UnaryOperator.NEG if token.text == "-"
                  else ast.UnaryOperator.POS)
            return ast.UnaryOp(op, operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()

        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.text
            if "." in text or "e" in text.lower():
                return ast.Literal(float(text))
            return ast.Literal(int(text))

        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.text)

        if token.is_keyword("null"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("true"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return ast.Literal(False)

        if token.is_keyword("case"):
            return self._parse_case()

        if token.is_keyword("exists"):
            self._advance()
            self._expect_punct("(")
            query = self._parse_select_like()
            self._expect_punct(")")
            return ast.ExistsExpr(query)

        if token.is_keyword("cast"):
            self._advance()
            self._expect_punct("(")
            operand = self._parse_expression()
            self._expect_keyword("as")
            type_name = self._expect_identifier("type name")
            # Swallow optional precision/scale: NUMERIC(10, 2).
            if self._accept_punct("("):
                self._expect_integer()
                if self._accept_punct(","):
                    self._expect_integer()
                self._expect_punct(")")
            self._expect_punct(")")
            return ast.Cast(operand, type_name)

        if self._accept_punct("("):
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr

        if token.type is TokenType.IDENTIFIER or (
                token.type is TokenType.KEYWORD
                and token.text.lower() not in _NON_ALIAS_KEYWORDS):
            return self._parse_name_or_call()

        raise self._error("expected an expression")

    def _parse_case(self) -> ast.Expr:
        self._expect_keyword("case")
        operand = None
        if not self._peek().is_keyword("when"):
            operand = self._parse_expression()
        whens = []
        while self._accept_keyword("when"):
            condition = self._parse_expression()
            self._expect_keyword("then")
            result = self._parse_expression()
            whens.append((condition, result))
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        default = None
        if self._accept_keyword("else"):
            default = self._parse_expression()
        self._expect_keyword("end")
        return ast.Case(tuple(whens), operand, default)

    def _parse_name_or_call(self) -> ast.Expr:
        name = self._advance().text
        # Function call?
        if self._peek().type is TokenType.PUNCTUATION \
                and self._peek().text == "(":
            self._advance()
            distinct = bool(self._accept_keyword("distinct"))
            args: list[ast.Expr] = []
            if self._peek().type is TokenType.OPERATOR \
                    and self._peek().text == "*":
                self._advance()
                args.append(ast.Star())
            elif not (self._peek().type is TokenType.PUNCTUATION
                      and self._peek().text == ")"):
                args.append(self._parse_expression())
                while self._accept_punct(","):
                    args.append(self._parse_expression())
            self._expect_punct(")")
            return ast.FunctionCall(name.lower(), tuple(args), distinct)
        # Qualified column: table.column or table.*
        if self._accept_punct("."):
            if self._peek().type is TokenType.OPERATOR \
                    and self._peek().text == "*":
                self._advance()
                return ast.Star(table=name)
            column = self._expect_identifier("column name")
            return ast.ColumnRef(column, table=name)
        return ast.ColumnRef(name)

    # -- DDL / DML ------------------------------------------------------------------

    def _parse_create_table(self) -> ast.CreateTable:
        self._expect_keyword("create")
        temporary = bool(self._accept_keyword("temporary", "temp"))
        self._expect_keyword("table")
        if_not_exists = False
        if self._accept_keyword("if"):
            self._expect_keyword("not")
            self._expect_keyword("exists")
            if_not_exists = True
        name = self._expect_identifier("table name")
        self._expect_punct("(")
        columns: list[ast.ColumnDef] = []
        table_pk: Optional[str] = None
        while True:
            if self._peek().is_keyword("primary"):
                self._advance()
                self._expect_keyword("key")
                self._expect_punct("(")
                table_pk = self._expect_identifier("column name")
                self._expect_punct(")")
            else:
                col_name = self._expect_identifier("column name")
                type_name = self._expect_identifier("type name")
                if self._accept_punct("("):
                    self._expect_integer()
                    if self._accept_punct(","):
                        self._expect_integer()
                    self._expect_punct(")")
                primary = False
                if self._accept_keyword("primary"):
                    self._expect_keyword("key")
                    primary = True
                if self._accept_keyword("not"):
                    self._expect_keyword("null")
                columns.append(ast.ColumnDef(col_name, type_name, primary))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        if table_pk is not None:
            for column in columns:
                if column.name.lower() == table_pk.lower():
                    column.primary_key = True
        return ast.CreateTable(name, columns, temporary, if_not_exists)

    def _parse_drop_table(self) -> ast.DropTable:
        self._expect_keyword("drop")
        self._expect_keyword("table")
        if_exists = False
        if self._accept_keyword("if"):
            self._expect_keyword("exists")
            if_exists = True
        name = self._expect_identifier("table name")
        return ast.DropTable(name, if_exists)

    def _parse_insert(self) -> ast.Insert:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_identifier("table name")
        columns = None
        if self._peek().type is TokenType.PUNCTUATION \
                and self._peek().text == "(" \
                and not self._peek(1).is_keyword("select", "with"):
            self._advance()
            columns = [self._expect_identifier("column name")]
            while self._accept_punct(","):
                columns.append(self._expect_identifier("column name"))
            self._expect_punct(")")
        if self._accept_keyword("values"):
            rows = [self._parse_values_row()]
            while self._accept_punct(","):
                rows.append(self._parse_values_row())
            return ast.Insert(table, columns, rows)
        query = self._parse_select_like()
        return ast.Insert(table, columns, query)

    def _parse_values_row(self) -> list[ast.Expr]:
        self._expect_punct("(")
        row = [self._parse_expression()]
        while self._accept_punct(","):
            row.append(self._parse_expression())
        self._expect_punct(")")
        return row

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("update")
        table = self._expect_identifier("table name")
        self._expect_keyword("set")
        assignments = [self._parse_assignment()]
        while self._accept_punct(","):
            assignments.append(self._parse_assignment())
        from_clause = None
        if self._accept_keyword("from"):
            from_clause = self._parse_from_clause()
        where = None
        if self._accept_keyword("where"):
            where = self._parse_expression()
        return ast.Update(table, assignments, from_clause, where)

    def _parse_assignment(self) -> tuple[str, ast.Expr]:
        column = self._expect_identifier("column name")
        token = self._accept_operator("=")
        if token is None:
            raise self._error("expected '=' in assignment")
        return column, self._parse_expression()

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_identifier("table name")
        where = None
        if self._accept_keyword("where"):
            where = self._parse_expression()
        return ast.Delete(table, where)


def parse(text: str, tracer=None) -> ast.Statement:
    """Parse a single SQL statement.

    ``tracer`` (a :class:`repro.obs.Tracer`) wraps the parse in a
    ``parse`` phase span recording input size and statement type.
    """
    if tracer is None or not tracer.enabled:
        return Parser(text).parse_statement()
    with tracer.span("parse", kind="phase", sql_chars=len(text)) as span:
        statement = Parser(text).parse_statement()
        span.set(statement_type=type(statement).__name__)
    return statement


def parse_script(text: str) -> list[ast.Statement]:
    """Parse a ';'-separated sequence of statements."""
    return Parser(text).parse_script()
