"""Batch transport for the exchange operators.

One shuffled piece travels as a tagged message over a
``multiprocessing`` pipe:

* ``("batch", meta, descs)`` — a non-empty piece.  ``meta`` is the
  wire header from :func:`repro.execution.frame.table_to_wire`;
  ``descs`` carries one descriptor per buffer block, either
  ``("inline", block)`` (the ndarray/bytes pickled straight through the
  pipe) or ``("shm", name, dtype, shape)`` (the block lives in a
  :class:`multiprocessing.shared_memory.SharedMemory` segment the
  receiver attaches to, copies out, and unlinks — the fast path for
  large batches, which skips pickling the payload through the pipe
  buffer).
* ``("empty",)`` — a zero-row piece; nothing to rebuild.
* ``("unchanged",)`` — delta-shuffle suppression: the piece equals the
  last one sent on this channel, the receiver must replay its cached
  copy.  Sent by :class:`repro.runtime.strategies.DeltaShuffleExchange`.

:func:`send_piece` returns the **payload bytes** of the piece
(``table.nbytes()``), independent of transport, so measured motion
matches the inline simulation's accounting bit for bit.

Senders never unlink: the receiver owns segment teardown (attach → copy
→ close → unlink).  Bookkeeping balances because every pool process
shares one ``multiprocessing`` resource tracker (children inherit the
tracker fd under fork and spawn alike) whose cache is a name *set*: the
sender's create-register and the receiver's attach-register collapse to
one entry, and the receiver's ``unlink()`` both removes the segment and
unregisters it.  If the receiver dies first, the entry survives and the
tracker reaps the segment at exit — a leak warning, not a leaked
segment.
"""

from __future__ import annotations

import numpy as np

from ..execution.frame import table_from_wire, table_to_wire
from ..storage import Table

# Blocks at or above this many bytes ride shared memory instead of the
# pipe.  Pipes hand the kernel ~64KiB at a time, so large ndarrays cost
# several copies each way; one shm segment costs a file + two mmaps.
SHM_THRESHOLD = 1 << 18

BATCH = "batch"
EMPTY = "empty"
UNCHANGED = "unchanged"


def send_piece(conn, table: Table,
               shm_threshold: int = SHM_THRESHOLD) -> int:
    """Ship ``table`` over ``conn``; returns its payload bytes."""
    if table.num_rows == 0:
        conn.send((EMPTY,))
        return 0
    meta, blocks = table_to_wire(table)
    descs = []
    for block in blocks:
        if isinstance(block, np.ndarray) and block.nbytes >= shm_threshold:
            from multiprocessing import shared_memory
            shm = shared_memory.SharedMemory(create=True,
                                             size=block.nbytes)
            shm.buf[:block.nbytes] = block.tobytes()
            descs.append(("shm", shm.name, block.dtype.str, block.shape))
            shm.close()
        else:
            descs.append(("inline", block))
    conn.send((BATCH, meta, descs))
    return table.nbytes()


def send_empty(conn) -> int:
    conn.send((EMPTY,))
    return 0


def send_unchanged(conn) -> int:
    conn.send((UNCHANGED,))
    return 0


def recv_piece(conn) -> tuple[str, Table | None]:
    """Receive one message; returns ``(kind, table-or-None)``.

    ``kind`` is BATCH (table present), EMPTY, or UNCHANGED (caller
    replays its cached piece).
    """
    message = conn.recv()
    kind = message[0]
    if kind != BATCH:
        return kind, None
    _, meta, descs = message
    blocks = []
    for desc in descs:
        if desc[0] == "shm":
            from multiprocessing import shared_memory
            _, name, dtype, shape = desc
            shm = shared_memory.SharedMemory(name=name)
            block = np.frombuffer(
                shm.buf, dtype=np.dtype(dtype)).reshape(shape).copy()
            shm.close()
            shm.unlink()
            blocks.append(block)
        else:
            blocks.append(desc[1])
    return kind, table_from_wire(meta, blocks)
