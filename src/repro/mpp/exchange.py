"""Exchange planning: distributed equi-joins and aggregations.

Implements the three standard MPP join strategies and the two-phase
aggregate, choosing by distribution compatibility and relative size —
the "data shuffle decisions" the paper attributes to MPPDB's planner
(§III).  Each strategy performs the actual per-segment work through the
single-node kernels, and every motion is charged to the cluster's
counters.
"""

from __future__ import annotations

import contextlib
import enum
from dataclasses import dataclass

import numpy as np

from ..execution.kernels import encode_keys, equi_join_pairs, group_ids
from ..storage import Column, Schema, ColumnSchema, Table
from ..types import SqlType
from .cluster import Cluster, DistributedTable
from .distribution import Distribution, DistributionKind


@contextlib.contextmanager
def exchange_span(cluster: Cluster, tracer, operation: str, **attrs):
    """An ``exchange`` span whose motion counters are measured as the
    delta of the cluster's bill across the wrapped work.

    Public: every motion-charging section of the MPP layer (the join and
    aggregate strategies here, the iterative driver's partial shuffle)
    wraps itself in one of these so all exchanges look alike in traces —
    one ``exchange`` span with ``operation`` plus measured
    ``rows_moved``/``bytes_moved``/``shuffles``."""
    mark = (cluster.motion.rows_moved, cluster.motion.bytes_moved,
            cluster.motion.shuffles)
    with tracer.span("exchange", kind="exchange", operation=operation,
                     **attrs) as span:
        yield span
        span.set(
            rows_moved=cluster.motion.rows_moved - mark[0],
            bytes_moved=cluster.motion.bytes_moved - mark[1],
            shuffles=cluster.motion.shuffles - mark[2])


class JoinStrategy(enum.Enum):
    COLOCATED = "colocated"
    REDISTRIBUTE_LEFT = "redistribute_left"
    REDISTRIBUTE_RIGHT = "redistribute_right"
    REDISTRIBUTE_BOTH = "redistribute_both"
    BROADCAST_LEFT = "broadcast_left"
    BROADCAST_RIGHT = "broadcast_right"


@dataclass
class JoinDecision:
    strategy: JoinStrategy
    estimated_rows_moved: int


def plan_join(cluster: Cluster, left: DistributedTable,
              right: DistributedTable, left_key: str,
              right_key: str) -> JoinDecision:
    """Choose the cheapest legal strategy by estimated motion volume."""
    if left.distribution.colocated_with(right.distribution, left_key,
                                        right_key):
        return JoinDecision(JoinStrategy.COLOCATED, 0)

    left_on_key = (left.distribution.kind is DistributionKind.HASHED
                   and left.distribution.key_column == left_key.lower())
    right_on_key = (right.distribution.kind is DistributionKind.HASHED
                    and right.distribution.key_column == right_key.lower())

    candidates: list[JoinDecision] = []
    if right_on_key:
        candidates.append(JoinDecision(JoinStrategy.REDISTRIBUTE_LEFT,
                                       left.num_rows))
    if left_on_key:
        candidates.append(JoinDecision(JoinStrategy.REDISTRIBUTE_RIGHT,
                                       right.num_rows))
    if not left_on_key and not right_on_key:
        candidates.append(JoinDecision(JoinStrategy.REDISTRIBUTE_BOTH,
                                       left.num_rows + right.num_rows))
    candidates.append(JoinDecision(
        JoinStrategy.BROADCAST_LEFT, left.num_rows * cluster.segments))
    candidates.append(JoinDecision(
        JoinStrategy.BROADCAST_RIGHT, right.num_rows * cluster.segments))
    return min(candidates, key=lambda d: d.estimated_rows_moved)


def distributed_join(cluster: Cluster, left: DistributedTable,
                     right: DistributedTable, left_key: str,
                     right_key: str,
                     tracer=None) -> tuple[DistributedTable,
                                           JoinDecision]:
    """Inner equi-join executed segment by segment.

    Returns the joined distributed table (hash-distributed on the join
    key) and the decision taken.  With a tracer, emits one ``exchange``
    span carrying the strategy and the motion it actually charged.
    """
    decision = plan_join(cluster, left, right, left_key, right_key)
    if tracer is not None and tracer.enabled:
        with exchange_span(cluster, tracer, "join",
                            strategy=decision.strategy.value,
                            left=left.name, right=right.name):
            return _execute_join(cluster, left, right, left_key,
                                 right_key, decision)
    return _execute_join(cluster, left, right, left_key, right_key,
                         decision)


def _execute_join(cluster: Cluster, left: DistributedTable,
                  right: DistributedTable, left_key: str,
                  right_key: str,
                  decision: JoinDecision) -> tuple[DistributedTable,
                                                   JoinDecision]:

    if decision.strategy is JoinStrategy.REDISTRIBUTE_LEFT:
        left = cluster.redistribute(left, left_key)
    elif decision.strategy is JoinStrategy.REDISTRIBUTE_RIGHT:
        right = cluster.redistribute(right, right_key)
    elif decision.strategy is JoinStrategy.REDISTRIBUTE_BOTH:
        left = cluster.redistribute(left, left_key)
        right = cluster.redistribute(right, right_key)
    elif decision.strategy is JoinStrategy.BROADCAST_LEFT:
        left = cluster.broadcast(left)
    elif decision.strategy is JoinStrategy.BROADCAST_RIGHT:
        right = cluster.broadcast(right)

    partitions = []
    for left_part, right_part in zip(left.partitions, right.partitions):
        partitions.append(_local_join(left_part, right_part, left_key,
                                      right_key))
    out_distribution = Distribution.hashed(left_key)
    return (DistributedTable(f"{left.name}_join_{right.name}",
                             out_distribution, partitions), decision)


def _local_join(left: Table, right: Table, left_key: str,
                right_key: str) -> Table:
    left_col = left.column(left_key)
    right_col = right.column(right_key)
    joint = left_col.concat(right_col)
    codes = encode_keys([joint], nulls_match=False)
    left_idx, right_idx = equi_join_pairs(codes[:left.num_rows],
                                          codes[left.num_rows:])
    left_rows = left.take(left_idx)
    right_rows = right.take(right_idx)
    columns = list(left_rows.columns) + list(right_rows.columns)
    names = ([f"l_{c.name}" for c in left.schema.columns]
             + [f"r_{c.name}" for c in right.schema.columns])
    schema = Schema(tuple(
        ColumnSchema(name, column.sql_type)
        for name, column in zip(names, columns)))
    return Table(schema, columns)


def distributed_aggregate_sum(cluster: Cluster, table: DistributedTable,
                              group_column: str, value_column: str,
                              tracer=None) -> DistributedTable:
    """Two-phase SUM GROUP BY: local partial aggregate, shuffle partials
    by group key, final aggregate.  The classic MPP plan — the local phase
    shrinks the motion from |rows| to |groups| per segment."""
    if tracer is not None and tracer.enabled:
        with exchange_span(cluster, tracer, "two_phase_aggregate",
                            table=table.name, group=group_column):
            return _execute_aggregate_sum(cluster, table, group_column,
                                          value_column)
    return _execute_aggregate_sum(cluster, table, group_column,
                                  value_column)


def _execute_aggregate_sum(cluster: Cluster, table: DistributedTable,
                           group_column: str,
                           value_column: str) -> DistributedTable:
    partials = [
        _local_sum(part, group_column, value_column)
        for part in table.partitions
    ]
    partial_table = partials[0]
    for part in partials[1:]:
        partial_table = partial_table.concat(part)

    staged = DistributedTable(f"{table.name}_partial",
                              Distribution.round_robin(),
                              [partial_table])
    # The partials move across the interconnect once.
    cluster.motion.shuffles += 1
    cluster.motion.rows_moved += partial_table.num_rows
    cluster.motion.bytes_moved += partial_table.nbytes()

    redistributed = cluster.redistribute(staged, group_column)
    finals = [_local_sum(part, group_column, value_column)
              for part in redistributed.partitions]
    return DistributedTable(f"{table.name}_agg",
                            Distribution.hashed(group_column), finals)


def _local_sum(table: Table, group_column: str,
               value_column: str) -> Table:
    if table.num_rows == 0:
        schema = Schema((
            ColumnSchema(group_column, table.schema.type_of(group_column)),
            ColumnSchema(value_column, SqlType.FLOAT)))
        return Table.empty(schema)
    keys = table.column(group_column)
    values = table.column(value_column).cast(SqlType.FLOAT)
    codes = encode_keys([keys], nulls_match=True)
    gids, first_index = group_ids(codes)
    sums = np.bincount(gids, weights=np.where(values.mask, 0.0,
                                              values.data),
                       minlength=len(first_index))
    key_out = keys.take(first_index)
    value_out = Column(SqlType.FLOAT, sums,
                       np.zeros(len(first_index), dtype=np.bool_))
    schema = Schema((ColumnSchema(group_column, keys.sql_type),
                     ColumnSchema(value_column, SqlType.FLOAT)))
    return Table(schema, [key_out, value_out])
