"""Simulated shared-nothing distribution layer (MPPDB substrate).

The single-node engine (``repro.engine``) executes plans; this package
models the *placement* dimension of MPPDB — hash distribution, exchange
motions, and the shuffle decisions the planner makes — with real
partitioning code and per-motion accounting.  See DESIGN.md for why the
simulation preserves the paper-relevant behaviour.
"""

from .cluster import Cluster, DistributedTable, MotionStats
from .distribution import (
    Distribution,
    DistributionKind,
    hash_partition_indices,
    split_table,
)
from .iterative import (
    DistributedPageRankResult,
    DistributedSsspResult,
    distributed_pagerank,
    distributed_sssp,
    pagerank_superstep_spec,
    sssp_superstep_spec,
)
from .exchange import (
    JoinDecision,
    JoinStrategy,
    distributed_aggregate_sum,
    distributed_join,
    exchange_span,
    plan_join,
)
from .plan import (
    ExchangeOp,
    ExchangePlan,
    LocalOp,
    RegisterDef,
    pagerank_exchange_plan,
    sssp_exchange_plan,
)
from .superstep import SuperstepSpec, superstep_inline, superstep_pool
from .workers import (
    InlineSegmentExecutor,
    ProcessSegmentExecutor,
    WorkerPool,
    WorkerReply,
    run_segment_tasks,
)

__all__ = [
    "Cluster",
    "DistributedTable",
    "MotionStats",
    "Distribution",
    "DistributionKind",
    "hash_partition_indices",
    "split_table",
    "DistributedPageRankResult",
    "DistributedSsspResult",
    "distributed_pagerank",
    "distributed_sssp",
    "pagerank_superstep_spec",
    "sssp_superstep_spec",
    "JoinDecision",
    "JoinStrategy",
    "distributed_aggregate_sum",
    "distributed_join",
    "exchange_span",
    "plan_join",
    "ExchangeOp",
    "ExchangePlan",
    "LocalOp",
    "RegisterDef",
    "pagerank_exchange_plan",
    "sssp_exchange_plan",
    "SuperstepSpec",
    "superstep_inline",
    "superstep_pool",
    "InlineSegmentExecutor",
    "ProcessSegmentExecutor",
    "WorkerPool",
    "WorkerReply",
    "run_segment_tasks",
]
