"""Simulated shared-nothing distribution layer (MPPDB substrate).

The single-node engine (``repro.engine``) executes plans; this package
models the *placement* dimension of MPPDB — hash distribution, exchange
motions, and the shuffle decisions the planner makes — with real
partitioning code and per-motion accounting.  See DESIGN.md for why the
simulation preserves the paper-relevant behaviour.
"""

from .cluster import Cluster, DistributedTable, MotionStats
from .distribution import (
    Distribution,
    DistributionKind,
    hash_partition_indices,
    split_table,
)
from .iterative import (
    DistributedPageRankResult,
    distributed_pagerank,
)
from .exchange import (
    JoinDecision,
    JoinStrategy,
    distributed_aggregate_sum,
    distributed_join,
    exchange_span,
    plan_join,
)
from .workers import (
    InlineSegmentExecutor,
    ProcessSegmentExecutor,
    run_segment_tasks,
)

__all__ = [
    "Cluster",
    "DistributedTable",
    "MotionStats",
    "Distribution",
    "DistributionKind",
    "hash_partition_indices",
    "split_table",
    "DistributedPageRankResult",
    "distributed_pagerank",
    "JoinDecision",
    "JoinStrategy",
    "distributed_aggregate_sum",
    "distributed_join",
    "exchange_span",
    "plan_join",
    "InlineSegmentExecutor",
    "ProcessSegmentExecutor",
    "run_segment_tasks",
]
