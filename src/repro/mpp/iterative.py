"""Distributed iterative execution on the simulated cluster.

Runs the paper's delta-accumulative PageRank loop entirely through the
MPP layer: edges stay hash-distributed on their source, the rank/delta
state is hash-distributed on node id, and each iteration performs the
join + two-phase aggregate with exchange motions accounted.  The rename
optimization has a distribution-level twin here: the new state *replaces*
the old by pointer swap — no gather/rescatter between iterations.

This is the substrate demonstration that the single-node engine's
rewrite would map onto MPPDB's segments; results are bit-compatible with
the single-node reference (checked in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..obs.telemetry import LoopTelemetry, render_iteration_table
from ..obs.trace import NULL_TRACER
from ..runtime import LoopRun
from ..storage import Column, ColumnSchema, Schema, Table
from ..types import SqlType
from .cluster import Cluster, DistributedTable
from .distribution import Distribution, hash_partition_indices, split_table
from .exchange import exchange_span
from .workers import run_segment_tasks

DAMPING = 0.85
BASE_DELTA = 0.15


@dataclass
class DistributedPageRankResult:
    """Final ranks plus the motion bill."""

    ranks: dict[int, float]
    iterations: int
    rows_moved: int
    bytes_moved: int
    shuffles: int
    telemetry: Optional[LoopTelemetry] = None

    def report(self) -> str:
        """Per-iteration breakdown (motion + convergence) as text."""
        if self.telemetry is None:
            return (f"distributed pagerank: {self.iterations} iterations, "
                    f"{self.rows_moved} rows moved")
        return "\n".join(render_iteration_table(self.telemetry))


def _state_table(nodes: list[int]) -> Table:
    schema = Schema((ColumnSchema("node", SqlType.INTEGER),
                     ColumnSchema("rank", SqlType.FLOAT),
                     ColumnSchema("delta", SqlType.FLOAT)))
    count = len(nodes)
    return Table(schema, [
        Column.from_values(SqlType.INTEGER, nodes),
        Column.from_values(SqlType.FLOAT, [0.0] * count),
        Column.from_values(SqlType.FLOAT, [BASE_DELTA] * count),
    ])


def distributed_pagerank(cluster: Cluster,
                         edges: list[tuple[int, int, float]],
                         iterations: int = 10,
                         tracer=None,
                         delta_shuffle: bool = False,
                         executor=None) -> \
        DistributedPageRankResult:
    """PageRank over ``edges`` executed segment by segment.

    Per iteration and per segment: join local src-distributed edges with
    the co-located delta state, compute partial contributions per
    destination, shuffle partials onto the destination's segment, and
    update rank/delta in place.

    ``tracer`` (a :class:`repro.obs.Tracer`) makes the loop emit one
    span per iteration, with one ``compute`` span (child ``segment``
    spans per worker) per local phase and one ``exchange`` span for the
    partial shuffle; per-iteration motion and convergence telemetry is
    always collected on the returned result.

    ``delta_shuffle`` applies the semi-naive idea at the exchange layer:
    each origin segment remembers the last partial-contribution piece it
    sent to every destination segment and skips the motion when the
    piece is unchanged (the receiver reuses its copy).  Off by default
    so the motion bill matches the naive exchange.

    ``executor`` runs the per-segment local phases: ``None`` (inline,
    the simulated cluster) or a
    :class:`repro.mpp.workers.ProcessSegmentExecutor` for real worker
    processes.  Both go through the same task wrapper, so results and
    trace shape are identical.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    nodes = sorted({e[0] for e in edges} | {e[1] for e in edges})
    node_index = {node: i for i, node in enumerate(nodes)}

    edges_table = Table(
        Schema((ColumnSchema("src", SqlType.INTEGER),
                ColumnSchema("dst", SqlType.INTEGER),
                ColumnSchema("weight", SqlType.FLOAT))),
        [Column.from_values(SqlType.INTEGER, [e[0] for e in edges]),
         Column.from_values(SqlType.INTEGER, [e[1] for e in edges]),
         Column.from_values(SqlType.FLOAT, [e[2] for e in edges])])

    distributed_edges = cluster.distribute(
        "pr_edges", edges_table, Distribution.hashed("src"))
    state = cluster.distribute(
        "pr_state", _state_table(nodes), Distribution.hashed("node"))
    cluster.motion.reset()

    # Last piece sent along each (origin, destination) channel, for the
    # delta-shuffle motion suppression.
    sent_pieces: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}

    # The same loop shell the SQL engine's loops run on: per-iteration
    # telemetry from motion-counter diffs, plus loop/iteration spans.
    run = LoopRun(
        0, "pr_state", "mpp", tracer=tracer,
        snapshot=lambda: {"rows_moved": cluster.motion.rows_moved,
                          "bytes_moved": cluster.motion.bytes_moved,
                          "shuffles": cluster.motion.shuffles},
        derive=lambda diff: diff,
        span_attributes={"segments": cluster.segments})
    run.begin()

    for trip in range(iterations):
        # Phase 1 (local): each segment joins its edges against the
        # co-located delta state (both hashed the same way, so the join
        # itself moves nothing) and emits (dst, delta * weight) partials.
        with tracer.span("compute", kind="compute",
                         operation="contributions"):
            partial_chunks: list[Table] = run_segment_tasks(
                tracer, _local_contributions,
                list(zip(distributed_edges.partitions, state.partitions)),
                executor=executor)

        # Phase 2 (exchange): shuffle partials by destination so each
        # segment owns the contributions to its own nodes.
        with exchange_span(cluster, tracer, "shuffle_partials"):
            assignments = [
                hash_partition_indices(chunk.column("dst"),
                                       cluster.segments)
                for chunk in partial_chunks]
            incoming: list[list[Table]] = [
                [] for _ in range(cluster.segments)]
            for origin, (chunk, assignment) in enumerate(
                    zip(partial_chunks, assignments)):
                pieces = split_table(chunk, assignment, cluster.segments)
                for segment, piece in enumerate(pieces):
                    if piece.num_rows == 0:
                        continue
                    incoming[segment].append(piece)
                    if segment != origin:
                        if delta_shuffle and _piece_unchanged(
                                sent_pieces, (origin, segment), piece):
                            continue
                        cluster.motion.rows_moved += piece.num_rows
                        cluster.motion.bytes_moved += piece.nbytes()
            cluster.motion.shuffles += 1

        # Phase 3 (local): apply rank += delta; delta = 0.85 * Σ incoming.
        with tracer.span("compute", kind="compute",
                         operation="apply_update"):
            new_partitions = run_segment_tasks(
                tracer, _apply_update,
                list(zip(state.partitions, incoming)),
                executor=executor)
        # The pointer swap — the distribution-level rename (§VI-A).
        state = DistributedTable("pr_state", state.distribution,
                                 new_partitions)

        delta_rows = sum(
            int((part.column("delta").data != 0.0).sum())
            for part in state.partitions)
        run.finish_iteration(
            trip + 1 < iterations,
            delta_rows=delta_rows,
            working_rows=sum(c.num_rows for c in partial_chunks),
            total_rows=state.num_rows)

    run.close()
    telemetry = run.telemetry

    gathered = state.gather()
    # Parity with the SQL query, which reports `rank` after the last
    # update (delta holds the not-yet-folded next increment).
    ranks = {node: rank for node, rank, _ in gathered.rows()}
    del node_index
    return DistributedPageRankResult(
        ranks=ranks,
        iterations=iterations,
        rows_moved=cluster.motion.rows_moved,
        bytes_moved=cluster.motion.bytes_moved,
        shuffles=cluster.motion.shuffles,
        telemetry=telemetry,
    )


def _piece_unchanged(sent: dict, channel: tuple[int, int],
                     piece: Table) -> bool:
    """True when ``piece`` equals the last piece sent on ``channel``;
    records the piece either way."""
    dst = piece.column("dst").data
    contribution = piece.column("contribution").data
    previous = sent.get(channel)
    sent[channel] = (dst, contribution)
    return (previous is not None
            and np.array_equal(previous[0], dst)
            and np.array_equal(previous[1], contribution))


def _local_contributions(edge_part: Table, state_part: Table) -> Table:
    """(dst, contribution) rows for one segment's edges."""
    src = edge_part.column("src").data
    dst = edge_part.column("dst").data
    weight = edge_part.column("weight").data
    state_nodes = state_part.column("node").data
    state_delta = state_part.column("delta").data

    order = np.argsort(state_nodes, kind="stable")
    sorted_nodes = state_nodes[order]
    positions = np.searchsorted(sorted_nodes, src)
    positions = np.clip(positions, 0, max(len(sorted_nodes) - 1, 0))
    if len(sorted_nodes):
        found = sorted_nodes[positions] == src
        delta_of_src = np.where(found, state_delta[order][positions], 0.0)
    else:
        delta_of_src = np.zeros(len(src))

    schema = Schema((ColumnSchema("dst", SqlType.INTEGER),
                     ColumnSchema("contribution", SqlType.FLOAT)))
    return Table(schema, [
        Column.from_numpy(SqlType.INTEGER, dst.astype(np.int64)),
        Column.from_numpy(SqlType.FLOAT, delta_of_src * weight),
    ])


def _apply_update(state_part: Table, pieces: list[Table]) -> Table:
    nodes = state_part.column("node").data
    rank = state_part.column("rank").data
    delta = state_part.column("delta").data

    new_rank = rank + delta
    sums = np.zeros(len(nodes))
    if pieces:
        all_dst = np.concatenate([p.column("dst").data for p in pieces])
        all_contrib = np.concatenate(
            [p.column("contribution").data for p in pieces])
        order = np.argsort(nodes, kind="stable")
        sorted_nodes = nodes[order]
        positions = np.searchsorted(sorted_nodes, all_dst)
        positions = np.clip(positions, 0, max(len(sorted_nodes) - 1, 0))
        found = sorted_nodes[positions] == all_dst
        np.add.at(sums, order[positions[found]], all_contrib[found])
    new_delta = DAMPING * sums

    return Table(state_part.schema, [
        state_part.column("node"),
        Column.from_numpy(SqlType.FLOAT, new_rank),
        Column.from_numpy(SqlType.FLOAT, new_delta),
    ])
