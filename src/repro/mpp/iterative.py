"""Distributed iterative workloads on the MPP substrate.

PageRank (the paper's delta-accumulative loop) and semi-naive SSSP,
each expressed once as a :class:`~repro.mpp.superstep.SuperstepSpec` —
module-level produce / pre-apply / apply callables plus a statically
verified :class:`~repro.mpp.plan.ExchangePlan` — and runnable on either
substrate:

* the **inline simulation** (default): segments execute sequentially
  in-process, exchanges charge measured piece sizes without moving
  anything — placement and motion modelling, as before;
* a real :class:`~repro.mpp.workers.WorkerPool` (``pool=``): each
  worker owns its hash partitions, batches cross worker boundaries over
  pipes/shared memory, compute overlaps motion, and ``delta_shuffle``
  genuinely suppresses wire traffic.  Results, motion counters, and
  trace shapes are bit-identical to the inline run (pinned in tests).

The rename optimization has a distribution-level twin on both paths:
the new state *replaces* the old by pointer swap — no gather/rescatter
between iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..obs.telemetry import LoopTelemetry, render_iteration_table
from ..obs.trace import NULL_TRACER
from ..runtime import LoopRun, make_exchange_strategy
from ..storage import Column, ColumnSchema, Schema, Table
from ..types import SqlType
from .cluster import Cluster, DistributedTable
from .distribution import Distribution
from .plan import pagerank_exchange_plan, sssp_exchange_plan
from .superstep import SuperstepSpec, superstep_inline, superstep_pool

DAMPING = 0.85
BASE_DELTA = 0.15


# ---------------------------------------------------------------------------
# The shared loop driver
# ---------------------------------------------------------------------------


@dataclass
class DistributedLoopResult:
    """Common shape of a distributed loop's outcome: the final state
    plus the motion bill and per-iteration telemetry."""

    iterations: int
    rows_moved: int
    bytes_moved: int
    shuffles: int
    suppressed_bytes: int = 0
    suppressed_batches: int = 0
    telemetry: Optional[LoopTelemetry] = None


def _verify_spec(spec: SuperstepSpec) -> None:
    # Imported lazily: repro.verify.exchange imports repro.mpp.plan, so
    # a module-level import here would cycle through the package inits.
    from ..verify.exchange import verify_exchange_plan
    verify_exchange_plan(spec.plan, pass_name=f"{spec.name}:exchange_plan")


def _run_distributed_loop(cluster: Cluster, spec: SuperstepSpec,
                          tables: dict[str, tuple[Table, Distribution]],
                          iterations: int, tracer, executor, pool,
                          metrics=None,
                          until_converged: bool = False,
                          loop_name: Optional[str] = None
                          ) -> tuple[Table, int, LoopTelemetry]:
    """Distribute ``tables``, drive ``iterations`` supersteps of
    ``spec`` on the chosen substrate, and gather the final state.

    Returns ``(final_state, trips, telemetry)``; the cluster's motion
    counters hold the loop's bill (reset after the initial load, which
    is charged as in any MPP engine but is not part of the loop).
    """
    _verify_spec(spec)
    distributed = {
        name: cluster.distribute(name, table, distribution)
        for name, (table, distribution) in tables.items()}
    cluster.motion.reset()

    if pool is not None:
        for name, table in distributed.items():
            pool.load(name, table.partitions)
        pool.set_spec(spec)
    strategy = make_exchange_strategy(spec.delta_shuffle)

    run = LoopRun(
        0, loop_name or spec.state, "mpp", tracer=tracer,
        snapshot=lambda: {"rows_moved": cluster.motion.rows_moved,
                          "bytes_moved": cluster.motion.bytes_moved,
                          "shuffles": cluster.motion.shuffles},
        derive=lambda diff: diff,
        span_attributes={"segments": cluster.segments})
    run.begin()

    trips = 0
    for trip in range(iterations):
        if pool is not None:
            step_metrics = superstep_pool(cluster, spec, pool, tracer)
        else:
            new_partitions, step_metrics = superstep_inline(
                cluster, spec, distributed, strategy, tracer,
                executor=executor)
            distributed[spec.state] = DistributedTable(
                spec.state, distributed[spec.state].distribution,
                new_partitions)
        trips += 1
        delta_rows = step_metrics.get("delta_rows", 0)
        converged = until_converged and delta_rows == 0
        run.finish_iteration(
            trip + 1 < iterations and not converged,
            delta_rows=delta_rows,
            working_rows=step_metrics.get("working_rows", 0),
            total_rows=step_metrics.get("total_rows", 0))
        if converged:
            break

    run.close()

    if metrics is not None:
        registry_counters = {
            "mpp.exchange.rows_moved": cluster.motion.rows_moved,
            "mpp.exchange.bytes_moved": cluster.motion.bytes_moved,
            "mpp.exchange.suppressed_bytes":
                cluster.motion.suppressed_bytes,
            "mpp.exchange.suppressed_batches":
                cluster.motion.suppressed_batches,
            "mpp.supersteps": trips,
        }
        for name, amount in registry_counters.items():
            metrics.counter(name).add(amount)

    if pool is not None:
        partitions = pool.fetch(spec.state)
        final = DistributedTable(spec.state,
                                 distributed[spec.state].distribution,
                                 partitions)
    else:
        final = distributed[spec.state]
    return final.gather(), trips, run.telemetry


# ---------------------------------------------------------------------------
# PageRank (delta-accumulative, §VI-A)
# ---------------------------------------------------------------------------


@dataclass
class DistributedPageRankResult:
    """Final ranks plus the motion bill."""

    ranks: dict[int, float]
    iterations: int
    rows_moved: int
    bytes_moved: int
    shuffles: int
    telemetry: Optional[LoopTelemetry] = None
    suppressed_bytes: int = 0
    suppressed_batches: int = 0

    def report(self) -> str:
        """Per-iteration breakdown (motion + convergence) as text."""
        if self.telemetry is None:
            return (f"distributed pagerank: {self.iterations} iterations, "
                    f"{self.rows_moved} rows moved")
        return "\n".join(render_iteration_table(self.telemetry))


def _state_table(nodes: list[int]) -> Table:
    schema = Schema((ColumnSchema("node", SqlType.INTEGER),
                     ColumnSchema("rank", SqlType.FLOAT),
                     ColumnSchema("delta", SqlType.FLOAT)))
    count = len(nodes)
    return Table(schema, [
        Column.from_values(SqlType.INTEGER, nodes),
        Column.from_values(SqlType.FLOAT, [0.0] * count),
        Column.from_values(SqlType.FLOAT, [BASE_DELTA] * count),
    ])


def _edges_table(edges: list[tuple[int, int, float]]) -> Table:
    return Table(
        Schema((ColumnSchema("src", SqlType.INTEGER),
                ColumnSchema("dst", SqlType.INTEGER),
                ColumnSchema("weight", SqlType.FLOAT))),
        [Column.from_values(SqlType.INTEGER, [e[0] for e in edges]),
         Column.from_values(SqlType.INTEGER, [e[1] for e in edges]),
         Column.from_values(SqlType.FLOAT, [e[2] for e in edges])])


def _lookup_sorted(keys: np.ndarray, probe: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Stable-sort lookup of ``probe`` in ``keys``: returns
    ``(positions_into_keys, found_mask)`` with positions expressed in
    the original (unsorted) key order."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    positions = np.searchsorted(sorted_keys, probe)
    positions = np.clip(positions, 0, max(len(sorted_keys) - 1, 0))
    if len(sorted_keys):
        found = sorted_keys[positions] == probe
    else:
        found = np.zeros(len(probe), dtype=np.bool_)
    return order[positions], found


def _pr_produce(registers: dict) -> Table:
    """(dst, contribution) rows for one segment's edges."""
    edge_part = registers["edges"]
    state_part = registers["state"]
    src = edge_part.column("src").data
    dst = edge_part.column("dst").data
    weight = edge_part.column("weight").data
    state_delta = state_part.column("delta").data

    positions, found = _lookup_sorted(state_part.column("node").data, src)
    if len(state_delta):
        delta_of_src = np.where(found, state_delta[positions], 0.0)
    else:
        delta_of_src = np.zeros(len(src))

    schema = Schema((ColumnSchema("dst", SqlType.INTEGER),
                     ColumnSchema("contribution", SqlType.FLOAT)))
    return Table(schema, [
        Column.from_numpy(SqlType.INTEGER, dst.astype(np.int64)),
        Column.from_numpy(SqlType.FLOAT, delta_of_src * weight),
    ])


def _pr_pre_apply(registers: dict) -> np.ndarray:
    """rank += delta needs no incoming pieces — the overlap phase."""
    state_part = registers["state"]
    return state_part.column("rank").data + state_part.column("delta").data


def _pr_apply(registers: dict, pieces: list[Table],
              new_rank: np.ndarray) -> Table:
    """delta = 0.85 * Σ incoming contributions (origin order)."""
    state_part = registers["state"]
    nodes = state_part.column("node").data
    sums = np.zeros(len(nodes))
    if pieces:
        all_dst = np.concatenate([p.column("dst").data for p in pieces])
        all_contrib = np.concatenate(
            [p.column("contribution").data for p in pieces])
        positions, found = _lookup_sorted(nodes, all_dst)
        np.add.at(sums, positions[found], all_contrib[found])
    new_delta = DAMPING * sums

    return Table(state_part.schema, [
        state_part.column("node"),
        Column.from_numpy(SqlType.FLOAT, new_rank),
        Column.from_numpy(SqlType.FLOAT, new_delta),
    ])


def _pr_metrics(registers: dict, outbound: Table) -> dict:
    state_part = registers["state"]
    return {
        "delta_rows": int((state_part.column("delta").data != 0.0).sum()),
        "working_rows": outbound.num_rows,
        "total_rows": state_part.num_rows,
    }


def pagerank_superstep_spec(delta_shuffle: bool = False) -> SuperstepSpec:
    return SuperstepSpec(
        name="pagerank",
        produce=_pr_produce,
        pre_apply=_pr_pre_apply,
        apply=_pr_apply,
        metrics=_pr_metrics,
        route_key="dst",
        state="state",
        plan=pagerank_exchange_plan(delta_shuffle),
        delta_shuffle=delta_shuffle,
        produce_op="contributions",
        apply_op="apply_update",
        exchange_op="shuffle_partials")


def distributed_pagerank(cluster: Cluster,
                         edges: list[tuple[int, int, float]],
                         iterations: int = 10,
                         tracer=None,
                         delta_shuffle: bool = False,
                         executor=None,
                         pool=None,
                         metrics=None) -> DistributedPageRankResult:
    """PageRank over ``edges`` executed segment by segment.

    Per iteration and per segment: join local src-distributed edges with
    the co-located delta state, compute partial contributions per
    destination, shuffle partials onto the destination's segment, and
    update rank/delta in place.

    ``tracer`` (a :class:`repro.obs.Tracer`) makes the loop emit one
    span per iteration, with one ``compute`` span (child ``segment``
    spans per worker) per local phase and one ``exchange`` span for the
    partial shuffle; per-iteration motion and convergence telemetry is
    always collected on the returned result.

    ``delta_shuffle`` applies the semi-naive idea at the exchange layer:
    each origin segment remembers the last partial-contribution piece it
    sent to every destination segment and skips the motion when the
    piece is unchanged (the receiver reuses its copy).  Off by default
    so the motion bill matches the naive exchange.

    ``executor`` runs the per-segment local phases of the inline
    simulation: ``None`` (sequential) or a
    :class:`repro.mpp.workers.ProcessSegmentExecutor`.  ``pool`` (a
    :class:`repro.mpp.workers.WorkerPool`) switches to real
    shared-nothing execution instead: partitions resident in worker
    processes, batches on the wire, compute overlapping motion.  All
    substrates produce bit-identical ranks, counters, and trace shapes.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) receives the
    loop's exchange-bytes counters (``mpp.exchange.*``).
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    nodes = sorted({e[0] for e in edges} | {e[1] for e in edges})
    spec = pagerank_superstep_spec(delta_shuffle)

    final, trips, telemetry = _run_distributed_loop(
        cluster, spec,
        {"edges": (_edges_table(edges), Distribution.hashed("src")),
         "state": (_state_table(nodes), Distribution.hashed("node"))},
        iterations, tracer, executor, pool, metrics=metrics,
        loop_name="pr_state")

    # Parity with the SQL query, which reports `rank` after the last
    # update (delta holds the not-yet-folded next increment).
    ranks = {node: rank for node, rank, _ in final.rows()}
    return DistributedPageRankResult(
        ranks=ranks,
        iterations=trips,
        rows_moved=cluster.motion.rows_moved,
        bytes_moved=cluster.motion.bytes_moved,
        shuffles=cluster.motion.shuffles,
        telemetry=telemetry,
        suppressed_bytes=cluster.motion.suppressed_bytes,
        suppressed_batches=cluster.motion.suppressed_batches,
    )


# ---------------------------------------------------------------------------
# SSSP (semi-naive frontier relaxation)
# ---------------------------------------------------------------------------


@dataclass
class DistributedSsspResult:
    """Final distances plus the motion bill."""

    distances: dict[int, float]
    iterations: int
    rows_moved: int
    bytes_moved: int
    shuffles: int
    telemetry: Optional[LoopTelemetry] = None
    suppressed_bytes: int = 0
    suppressed_batches: int = 0

    def report(self) -> str:
        if self.telemetry is None:
            return (f"distributed sssp: {self.iterations} iterations, "
                    f"{self.rows_moved} rows moved")
        return "\n".join(render_iteration_table(self.telemetry))


def _sssp_state_table(nodes: list[int], source: int) -> Table:
    schema = Schema((ColumnSchema("node", SqlType.INTEGER),
                     ColumnSchema("dist", SqlType.FLOAT),
                     ColumnSchema("changed", SqlType.INTEGER)))
    dist = [0.0 if node == source else np.inf for node in nodes]
    changed = [1 if node == source else 0 for node in nodes]
    return Table(schema, [
        Column.from_values(SqlType.INTEGER, nodes),
        Column.from_values(SqlType.FLOAT, dist),
        Column.from_values(SqlType.INTEGER, changed),
    ])


def _sssp_produce(registers: dict) -> Table:
    """Relax only the edges out of last trip's changed frontier."""
    edge_part = registers["edges"]
    state_part = registers["state"]
    src = edge_part.column("src").data
    dst = edge_part.column("dst").data
    weight = edge_part.column("weight").data
    dist = state_part.column("dist").data
    changed = state_part.column("changed").data

    positions, found = _lookup_sorted(state_part.column("node").data, src)
    if len(dist):
        dist_src = np.where(found, dist[positions], np.inf)
        changed_src = np.where(found, changed[positions], 0)
    else:
        dist_src = np.full(len(src), np.inf)
        changed_src = np.zeros(len(src), dtype=np.int64)
    frontier = (changed_src != 0) & np.isfinite(dist_src)

    schema = Schema((ColumnSchema("dst", SqlType.INTEGER),
                     ColumnSchema("dist", SqlType.FLOAT)))
    return Table(schema, [
        Column.from_numpy(SqlType.INTEGER,
                          dst[frontier].astype(np.int64)),
        Column.from_numpy(SqlType.FLOAT,
                          dist_src[frontier] + weight[frontier]),
    ])


def _sssp_apply(registers: dict, pieces: list[Table], aux) -> Table:
    """Min-merge incoming candidate distances (order-independent)."""
    state_part = registers["state"]
    nodes = state_part.column("node").data
    dist = state_part.column("dist").data

    best = np.full(len(nodes), np.inf)
    if pieces:
        all_dst = np.concatenate([p.column("dst").data for p in pieces])
        all_dist = np.concatenate([p.column("dist").data for p in pieces])
        positions, found = _lookup_sorted(nodes, all_dst)
        np.minimum.at(best, positions[found], all_dist[found])
    new_dist = np.minimum(dist, best)
    new_changed = (new_dist < dist).astype(np.int64)

    return Table(state_part.schema, [
        state_part.column("node"),
        Column.from_numpy(SqlType.FLOAT, new_dist),
        Column.from_numpy(SqlType.INTEGER, new_changed),
    ])


def _sssp_metrics(registers: dict, outbound: Table) -> dict:
    state_part = registers["state"]
    return {
        "delta_rows": int((state_part.column("changed").data != 0).sum()),
        "working_rows": outbound.num_rows,
        "total_rows": state_part.num_rows,
    }


def sssp_superstep_spec(delta_shuffle: bool = False) -> SuperstepSpec:
    return SuperstepSpec(
        name="sssp",
        produce=_sssp_produce,
        apply=_sssp_apply,
        metrics=_sssp_metrics,
        route_key="dst",
        state="state",
        plan=sssp_exchange_plan(delta_shuffle),
        delta_shuffle=delta_shuffle,
        produce_op="relax",
        apply_op="min_merge",
        exchange_op="shuffle_candidates")


def distributed_sssp(cluster: Cluster,
                     edges: list[tuple[int, int, float]],
                     source: int,
                     max_iterations: int = 64,
                     tracer=None,
                     delta_shuffle: bool = False,
                     executor=None,
                     pool=None,
                     metrics=None) -> DistributedSsspResult:
    """Single-source shortest paths, semi-naive, on either substrate.

    Each superstep relaxes only the edges out of the previous trip's
    changed frontier, shuffles (dst, candidate-distance) pairs onto the
    destination's segment, and min-merges — the min is associative and
    commutative, so the result is exact regardless of how candidates
    split across segments.  The loop stops when a superstep changes no
    distance (semi-naive convergence), so converged runs stay O(1) per
    extra trip.  Substrate, tracing, and delta-shuffle semantics match
    :func:`distributed_pagerank`.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    nodes = sorted({e[0] for e in edges} | {e[1] for e in edges}
                   | {source})
    spec = sssp_superstep_spec(delta_shuffle)

    final, trips, telemetry = _run_distributed_loop(
        cluster, spec,
        {"edges": (_edges_table(edges), Distribution.hashed("src")),
         "state": (_sssp_state_table(nodes, source),
                   Distribution.hashed("node"))},
        max_iterations, tracer, executor, pool, metrics=metrics,
        until_converged=True, loop_name="sssp_state")

    distances = {node: dist for node, dist, _ in final.rows()}
    return DistributedSsspResult(
        distances=distances,
        iterations=trips,
        rows_moved=cluster.motion.rows_moved,
        bytes_moved=cluster.motion.bytes_moved,
        shuffles=cluster.motion.shuffles,
        telemetry=telemetry,
        suppressed_bytes=cluster.motion.suppressed_bytes,
        suppressed_batches=cluster.motion.suppressed_batches,
    )
