"""The simulated shared-nothing cluster.

A :class:`Cluster` holds N segments, each with its own partition of every
distributed table.  Segments execute sequentially (this is a simulation of
placement and movement, not of parallel speedup); what the benchmarks read
is the :class:`MotionStats` — rows and bytes crossing the interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import CatalogError
from ..storage import Table
from .distribution import (
    Distribution,
    DistributionKind,
    hash_partition_indices,
    split_table,
)


@dataclass
class MotionStats:
    """Interconnect traffic counters.

    ``suppressed_rows``/``suppressed_bytes``/``suppressed_batches``
    count traffic that delta-shuffle *would* have moved but proved
    unchanged — the wire savings the semi-naive exchange claims, kept
    separate so ``bytes_moved`` stays strictly what crossed (or, in the
    inline simulation, would cross) the interconnect.
    """

    shuffles: int = 0
    broadcasts: int = 0
    rows_moved: int = 0
    bytes_moved: int = 0
    suppressed_rows: int = 0
    suppressed_bytes: int = 0
    suppressed_batches: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)

    def reset(self) -> None:
        self.shuffles = 0
        self.broadcasts = 0
        self.rows_moved = 0
        self.bytes_moved = 0
        self.suppressed_rows = 0
        self.suppressed_bytes = 0
        self.suppressed_batches = 0


@dataclass
class DistributedTable:
    """One logical table: a distribution and per-segment partitions."""

    name: str
    distribution: Distribution
    partitions: list[Table]

    @property
    def num_rows(self) -> int:
        return sum(p.num_rows for p in self.partitions)

    @property
    def schema(self):
        return self.partitions[0].schema

    def gather(self) -> Table:
        """Union of all partitions (the gather motion to the coordinator)."""
        out = self.partitions[0]
        for part in self.partitions[1:]:
            out = out.concat(part)
        return out


class Cluster:
    """A fixed-size shared-nothing cluster."""

    def __init__(self, segments: int = 4):
        if segments < 1:
            raise ValueError("a cluster needs at least one segment")
        self.segments = segments
        self.motion = MotionStats()
        self._tables: dict[str, DistributedTable] = {}

    # -- table placement ------------------------------------------------------

    def distribute(self, name: str, table: Table,
                   distribution: Distribution) -> DistributedTable:
        """Load a table into the cluster under the given distribution.

        Loading charges one full shuffle (the rows travel from the
        coordinator to their segments), matching how an MPP load works.
        """
        if distribution.kind is DistributionKind.HASHED:
            key = distribution.key_column
            if key is None:
                raise CatalogError("hashed distribution needs a key column")
            assignment = hash_partition_indices(table.column(key),
                                                self.segments)
            partitions = split_table(table, assignment, self.segments)
        elif distribution.kind is DistributionKind.REPLICATED:
            partitions = [table.copy() for _ in range(self.segments)]
        else:  # ROUND_ROBIN
            assignment = np.arange(table.num_rows,
                                   dtype=np.int64) % self.segments
            partitions = split_table(table, assignment, self.segments)

        moved = sum(p.num_rows for p in partitions)
        self.motion.rows_moved += moved
        self.motion.bytes_moved += sum(p.nbytes() for p in partitions)
        self.motion.shuffles += 1

        distributed = DistributedTable(name.lower(), distribution,
                                       partitions)
        self._tables[name.lower()] = distributed
        return distributed

    def table(self, name: str) -> DistributedTable:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no distributed table {name!r}") from None

    def drop(self, name: str) -> None:
        self._tables.pop(name.lower(), None)

    # -- motions ---------------------------------------------------------------

    def redistribute(self, table: DistributedTable,
                     key_column: str) -> DistributedTable:
        """Shuffle a distributed table onto a new hash key."""
        target = Distribution.hashed(key_column)
        if table.distribution == target:
            return table
        gathered = table.gather()
        assignment = hash_partition_indices(gathered.column(key_column),
                                            self.segments)
        partitions = split_table(gathered, assignment, self.segments)
        self.motion.shuffles += 1
        # On average (S-1)/S of the rows change segments; we charge all
        # rows conservatively, as MPP engines do for costing.
        self.motion.rows_moved += gathered.num_rows
        self.motion.bytes_moved += gathered.nbytes()
        return DistributedTable(table.name, target, partitions)

    def broadcast(self, table: DistributedTable) -> DistributedTable:
        """Replicate a distributed table to every segment."""
        if table.distribution.kind is DistributionKind.REPLICATED:
            return table
        gathered = table.gather()
        self.motion.broadcasts += 1
        self.motion.rows_moved += gathered.num_rows * self.segments
        self.motion.bytes_moved += gathered.nbytes() * self.segments
        partitions = [gathered.copy() for _ in range(self.segments)]
        return DistributedTable(table.name, Distribution.replicated(),
                                partitions)
