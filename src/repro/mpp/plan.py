"""Exchange plans: the static IR of one distributed superstep.

A distributed iterative workload runs the same *superstep program* on
every worker each trip around the loop: one or more local compute
phases, with exchange operators moving columnar batch registers between
workers in between.  Before the first superstep runs, the driver builds
an :class:`ExchangePlan` describing that program — which registers are
resident (hash-partitioned on a key), which are produced locally, what
each exchange routes on, and whether the exchange may apply delta-
shuffle suppression — and hands it to the verifier
(:mod:`repro.verify.exchange`), the distributed tail of the PR-5 IR
verifier.

The plan is deliberately tiny and frozen: it is shipped to every worker
alongside the :class:`~repro.mpp.superstep.SuperstepSpec`, so it must
pickle by value and never mutate after verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

NAIVE = "naive"
SEMI_NAIVE = "semi_naive"
STRATEGIES = (NAIVE, SEMI_NAIVE)


@dataclass(frozen=True)
class RegisterDef:
    """One resident (pre-distributed) register of the superstep program.

    ``key`` names the hash-partition column; ``None`` marks a register
    that is replicated or local-only and never co-locates with anything.
    """

    name: str
    columns: tuple[str, ...]
    key: Optional[str] = None


@dataclass(frozen=True)
class LocalOp:
    """One per-worker compute phase.

    ``requires`` lists the co-location contracts the phase relies on:
    each entry is a tuple of ``(register, column)`` pairs that must all
    be hash-distributed on the named column when the phase runs (equal
    values hash identically, so equal keys land on the same worker).
    """

    operation: str
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    requires: tuple[tuple[tuple[str, str], ...], ...] = ()


@dataclass(frozen=True)
class ExchangeOp:
    """One motion edge: shuffle ``register`` onto ``hash(key)``.

    ``delta`` requests delta-shuffle suppression — workers skip the wire
    for a piece identical to the last one sent on the same channel.
    Only legal under the ``semi_naive`` plan strategy, where state
    evolves by deltas and an unchanged piece provably re-derives the
    receiver's cached copy.
    """

    register: str
    key: str
    columns: tuple[str, ...] = ()
    delta: bool = False


Step = Union[LocalOp, ExchangeOp]


@dataclass(frozen=True)
class ExchangePlan:
    """The verified shape of one distributed superstep program."""

    name: str
    strategy: str = NAIVE
    registers: tuple[RegisterDef, ...] = ()
    steps: tuple[Step, ...] = field(default_factory=tuple)

    def register(self, name: str) -> Optional[RegisterDef]:
        for reg in self.registers:
            if reg.name == name:
                return reg
        return None

    def exchanges(self) -> list[ExchangeOp]:
        return [step for step in self.steps
                if isinstance(step, ExchangeOp)]


# ---------------------------------------------------------------------------
# Plan builders for the shipped workloads
# ---------------------------------------------------------------------------


def pagerank_exchange_plan(delta_shuffle: bool = False) -> ExchangePlan:
    """The delta-accumulative PageRank superstep (paper §VI-A): local
    contributions from src-hashed edges joined with co-located state,
    shuffle partials by destination, apply rank/delta in place."""
    return ExchangePlan(
        name="pagerank",
        strategy=SEMI_NAIVE if delta_shuffle else NAIVE,
        registers=(
            RegisterDef("edges", ("src", "dst", "weight"), key="src"),
            RegisterDef("state", ("node", "rank", "delta"), key="node"),
        ),
        steps=(
            LocalOp("contributions", reads=("edges", "state"),
                    writes=("partials",),
                    requires=((("edges", "src"), ("state", "node")),)),
            ExchangeOp("partials", key="dst",
                       columns=("dst", "contribution"),
                       delta=delta_shuffle),
            LocalOp("apply_update", reads=("state", "partials"),
                    writes=("state",),
                    requires=((("state", "node"), ("partials", "dst")),)),
        ))


def sssp_exchange_plan(delta_shuffle: bool = False) -> ExchangePlan:
    """The semi-naive SSSP superstep: relax edges out of the changed
    frontier, shuffle candidate distances by destination, min-merge."""
    return ExchangePlan(
        name="sssp",
        strategy=SEMI_NAIVE,
        registers=(
            RegisterDef("edges", ("src", "dst", "weight"), key="src"),
            RegisterDef("state", ("node", "dist", "changed"), key="node"),
        ),
        steps=(
            LocalOp("relax", reads=("edges", "state"),
                    writes=("candidates",),
                    requires=((("edges", "src"), ("state", "node")),)),
            ExchangeOp("candidates", key="dst",
                       columns=("dst", "dist"),
                       delta=delta_shuffle),
            LocalOp("min_merge", reads=("state", "candidates"),
                    writes=("state",),
                    requires=((("state", "node"),
                               ("candidates", "dst")),)),
        ))
