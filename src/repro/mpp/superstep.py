"""The distributed superstep: one spec, two substrates.

A :class:`SuperstepSpec` packages everything one trip of a distributed
iterative workload does — the local produce phase, the routed exchange,
the overlap-eligible pre-apply work, and the apply phase — as
module-level picklable callables plus the static
:class:`~repro.mpp.plan.ExchangePlan` the verifier checks.

Two runners execute the same spec:

* :func:`superstep_inline` — the simulated cluster: segments run
  sequentially in-process via :func:`~repro.mpp.workers.run_segment_tasks`
  and the exchange moves nothing, only charging measured piece sizes to
  the motion counters.
* :func:`superstep_pool` — real shared-nothing execution on a
  :class:`~repro.mpp.workers.WorkerPool`: each worker owns its
  partitions, ships typed columnar batches to its peers over pipes (or
  shared memory), and overlaps its pre-apply compute with the outbound
  drain.  The coordinator only aggregates measured stats and grafts the
  worker spans back, so traces and counters come out identical to the
  inline runner.

Bit-identity between the two rests on three invariants: both run the
*same* produce/apply callables; each receiver assembles its incoming
pieces in origin order (its own piece at its own index, empty pieces
skipped) exactly like the inline loop appends them; and measured motion
is always the piece's ``nbytes()`` regardless of transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..runtime.strategies import SEND, UNCHANGED, ExchangeStrategy
from ..storage import Table
from .cluster import Cluster, DistributedTable
from .distribution import hash_partition_indices, split_table
from .exchange import exchange_span
from .plan import ExchangePlan
from .workers import run_segment_tasks


@dataclass(frozen=True)
class SuperstepSpec:
    """One trip of a distributed iterative workload, as data.

    All callables must be module-level (picklable) and pure functions of
    their arguments — the spec crosses the process boundary once and is
    then executed by every worker every trip:

    * ``produce(registers) -> Table`` — the local phase emitting the
      rows to shuffle; ``registers`` maps register name -> this
      segment's partition.
    * ``pre_apply(registers) -> aux`` — optional apply work that needs
      no incoming pieces; the pool runner executes it while outbound
      batches drain (the compute/motion overlap), the inline runner
      immediately before ``apply``.
    * ``apply(registers, pieces, aux) -> Table`` — folds the incoming
      pieces (origin order) into a new partition of the ``state``
      register.
    * ``metrics(registers, outbound) -> dict`` — optional per-segment
      loop telemetry (``delta_rows``/``working_rows``/``total_rows``),
      summed across segments by the runner.
    """

    name: str
    produce: Callable
    apply: Callable
    route_key: str
    state: str
    plan: ExchangePlan
    delta_shuffle: bool = False
    pre_apply: Optional[Callable] = None
    metrics: Optional[Callable] = None
    produce_op: str = "produce"
    apply_op: str = "apply"
    exchange_op: str = "shuffle"


def _produce_phase(spec: SuperstepSpec, registers: dict) -> Table:
    return spec.produce(registers)


def _apply_phase(spec: SuperstepSpec, registers: dict,
                 pieces: list) -> Table:
    aux = spec.pre_apply(registers) if spec.pre_apply else None
    return spec.apply(registers, pieces, aux)


def _sum_metrics(per_segment: list[Optional[dict]]) -> dict:
    totals: dict[str, int] = {}
    for metrics in per_segment:
        for key, value in (metrics or {}).items():
            totals[key] = totals.get(key, 0) + int(value)
    return totals


def charge_piece(motion, kind: str, piece: Table) -> None:
    """Apply one classified cross-segment piece to the motion bill."""
    if kind == SEND:
        motion.rows_moved += piece.num_rows
        motion.bytes_moved += piece.nbytes()
    elif kind == UNCHANGED:
        motion.suppressed_rows += piece.num_rows
        motion.suppressed_bytes += piece.nbytes()
        motion.suppressed_batches += 1


def superstep_inline(cluster: Cluster, spec: SuperstepSpec,
                     registers: dict[str, DistributedTable],
                     strategy: ExchangeStrategy, tracer,
                     executor=None) -> tuple[list[Table], dict]:
    """One superstep on the simulated cluster.

    Returns the new partitions of the ``state`` register and the summed
    per-segment metrics.  ``strategy`` persists across trips (it holds
    the delta-shuffle channel caches).
    """
    segments = cluster.segments
    regs_per_segment = [
        {name: table.partitions[i] for name, table in registers.items()}
        for i in range(segments)]

    with tracer.span("compute", kind="compute",
                     operation=spec.produce_op):
        chunks: list[Table] = run_segment_tasks(
            tracer, _produce_phase,
            [(spec, regs) for regs in regs_per_segment],
            executor=executor)

    with exchange_span(cluster, tracer, spec.exchange_op):
        incoming: list[list[Table]] = [[] for _ in range(segments)]
        for origin, chunk in enumerate(chunks):
            assignment = hash_partition_indices(
                chunk.column(spec.route_key), segments)
            pieces = split_table(chunk, assignment, segments)
            for segment, piece in enumerate(pieces):
                if piece.num_rows == 0:
                    continue
                incoming[segment].append(piece)
                if segment != origin:
                    kind = strategy.classify((origin, segment), piece)
                    charge_piece(cluster.motion, kind, piece)
        cluster.motion.shuffles += 1

    with tracer.span("compute", kind="compute", operation=spec.apply_op):
        new_partitions = run_segment_tasks(
            tracer, _apply_phase,
            [(spec, regs_per_segment[i], incoming[i])
             for i in range(segments)],
            executor=executor)

    metrics = _sum_metrics([
        spec.metrics({**regs_per_segment[i], spec.state: new_partitions[i]},
                     chunks[i]) if spec.metrics else None
        for i in range(segments)])
    return new_partitions, metrics


def superstep_pool(cluster: Cluster, spec: SuperstepSpec, pool,
                   tracer) -> dict:
    """One superstep on a :class:`~repro.mpp.workers.WorkerPool`.

    The workers do everything — produce, ship, overlap, apply — against
    their resident partitions; this coordinator side only broadcasts
    the trip command, folds the measured per-worker motion into the
    cluster's bill, and rebuilds the inline trace shape by grafting the
    worker-phase spans under freshly opened compute spans (the spans'
    own seconds carry the worker-measured time; the coordinator spans
    only provide the shape).
    """
    replies = pool.superstep(tracer)

    with tracer.span("compute", kind="compute",
                     operation=spec.produce_op):
        if tracer.enabled:
            context = tracer.context()
            for reply in replies:
                tracer.merge(context, reply.produce_spans)

    with exchange_span(cluster, tracer, spec.exchange_op):
        for reply in replies:
            for key, value in reply.stats.items():
                setattr(cluster.motion, key,
                        getattr(cluster.motion, key) + value)
        cluster.motion.shuffles += 1

    with tracer.span("compute", kind="compute", operation=spec.apply_op):
        if tracer.enabled:
            context = tracer.context()
            for reply in replies:
                tracer.merge(context, reply.apply_spans)

    return _sum_metrics([reply.metrics for reply in replies])
