"""Segment task execution: inline or in real worker processes.

The simulated cluster runs per-segment work in a plain loop; the
process-backed executor runs the *same* task function in a
``multiprocessing`` pool — the first step from simulated shared-nothing
to actual shared-nothing.  Both paths go through one wrapper
(:func:`_segment_task`) so they are indistinguishable above this module:
same results, and — via :class:`repro.obs.TraceContext` — the same trace
shape.

Tracing across the process boundary works by capture/buffer/merge: the
parent captures one ``TraceContext`` at the span where segment work
belongs, each worker builds a :class:`~repro.obs.trace.ContextTracer`
from it and buffers its spans locally, and the parent merges the
exported spans back in segment order on join.  An untraced run ships no
context and the workers skip span buffering entirely.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Optional, Sequence

from ..obs.trace import ContextTracer, TraceContext

# payload = (fn, args, segment, context_dict | None)
# outcome = (result, exported span dicts | None)


def _segment_task(payload: tuple) -> tuple:
    """Run one segment's work, tracing it when a context was shipped.

    Module-level (and payload built from picklable pieces) so the same
    callable crosses the ``multiprocessing`` boundary unchanged — the
    inline executor calls it directly, which is what makes the two
    executors trace-identical by construction."""
    fn, args, segment, context_data = payload
    if context_data is None:
        return fn(*args), None
    tracer = ContextTracer(TraceContext.from_dict(context_data))
    with tracer.span("segment", kind="worker", segment=segment):
        result = fn(*args)
    return result, tracer.export_spans()


class InlineSegmentExecutor:
    """Runs segment tasks sequentially in the calling process (the
    simulated-cluster default)."""

    processes = 0

    def run(self, payloads: Sequence[tuple]) -> list[tuple]:
        return [_segment_task(payload) for payload in payloads]

    def close(self) -> None:
        pass


class ProcessSegmentExecutor:
    """Runs segment tasks in a ``multiprocessing`` pool.

    Prefers ``fork`` (cheap, inherits the parent's modules) and falls
    back to the platform default where fork is unavailable.  The pool is
    created lazily on first use and reused across iterations — a
    per-iteration pool would dominate the runtime of smoke-scale loops.
    """

    def __init__(self, processes: Optional[int] = None):
        self.processes = processes or min(4, multiprocessing.cpu_count())
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else methods[0]
            context = multiprocessing.get_context(method)
            self._pool = context.Pool(self.processes)
        return self._pool

    def run(self, payloads: Sequence[tuple]) -> list[tuple]:
        return self._ensure_pool().map(_segment_task, list(payloads))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ProcessSegmentExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_segment_tasks(tracer, fn: Callable,
                      args_per_segment: Sequence[tuple],
                      executor=None) -> list:
    """Run ``fn(*args)`` once per segment through ``executor`` and
    return the per-segment results in segment order.

    When the run is traced, one :class:`TraceContext` is captured at the
    caller's current span, shipped to every worker, and the buffered
    worker spans are merged back under it in segment order — so the
    merged trace looks the same whether the executor was inline or
    process-backed."""
    if executor is None:
        executor = InlineSegmentExecutor()
    context = tracer.context() if tracer.enabled else None
    context_data = context.to_dict() if context is not None else None
    payloads = [(fn, tuple(args), segment, context_data)
                for segment, args in enumerate(args_per_segment)]
    outcomes = executor.run(payloads)
    results = []
    exported: list[dict] = []
    for result, spans in outcomes:
        results.append(result)
        if spans:
            exported.extend(spans)
    if context is not None and exported:
        tracer.merge(context, exported)
    return results
