"""Segment task execution: inline, pooled tasks, or resident workers.

Three substrates, one contract:

* :class:`InlineSegmentExecutor` — the simulated cluster runs
  per-segment work in a plain loop.
* :class:`ProcessSegmentExecutor` — the same task functions in a
  ``multiprocessing`` pool; state still lives with the coordinator and
  ships with every task.
* :class:`WorkerPool` — real shared-nothing execution: N resident
  worker processes, spawned once per cluster, each *owning* its hash
  partitions for the lifetime of the pool.  The coordinator drives
  supersteps over duplex command pipes; data moves worker-to-worker
  over dedicated one-way pipes (one per ordered pair) carrying the
  typed columnar batches of :mod:`repro.mpp.wire`.  Within a
  superstep each worker overlaps compute with motion: a sender thread
  drains the outbound pieces while the main thread runs the
  pre-apply phase, then receives in deterministic origin order —
  receiving on per-origin pipes makes assembly order independent of
  arrival order, which is what keeps float accumulation bit-identical
  to the inline simulation.  No send ever blocks a receive (they run
  on different threads), so pipe back-pressure cannot deadlock the
  fleet.

Tracing across the process boundary works by capture/buffer/merge: the
parent captures one ``TraceContext`` at the span where segment work
belongs, each worker builds a :class:`~repro.obs.trace.ContextTracer`
from it and buffers its spans locally, and the parent merges the
exported spans back in segment order on join.  An untraced run ships no
context and the workers skip span buffering entirely.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..errors import MppWorkerError
from ..obs.trace import NULL_TRACER, ContextTracer, TraceContext
from ..runtime.strategies import SEND, UNCHANGED, make_exchange_strategy
from . import wire
from .distribution import hash_partition_indices, split_table

# payload = (fn, args, segment, context_dict | None)
# outcome = (result, exported span dicts | None)


def _segment_task(payload: tuple) -> tuple:
    """Run one segment's work, tracing it when a context was shipped.

    Module-level (and payload built from picklable pieces) so the same
    callable crosses the ``multiprocessing`` boundary unchanged — the
    inline executor calls it directly, which is what makes the two
    executors trace-identical by construction."""
    fn, args, segment, context_data = payload
    if context_data is None:
        return fn(*args), None
    tracer = ContextTracer(TraceContext.from_dict(context_data))
    with tracer.span("segment", kind="worker", segment=segment):
        result = fn(*args)
    return result, tracer.export_spans()


class InlineSegmentExecutor:
    """Runs segment tasks sequentially in the calling process (the
    simulated-cluster default)."""

    processes = 0

    def run(self, payloads: Sequence[tuple]) -> list[tuple]:
        return [_segment_task(payload) for payload in payloads]

    def close(self) -> None:
        pass


class ProcessSegmentExecutor:
    """Runs segment tasks in a ``multiprocessing`` pool.

    Prefers ``fork`` (cheap, inherits the parent's modules) and falls
    back to the platform default where fork is unavailable.  The pool is
    created lazily on first use and reused across iterations — a
    per-iteration pool would dominate the runtime of smoke-scale loops.
    """

    def __init__(self, processes: Optional[int] = None):
        self.processes = processes or min(4, multiprocessing.cpu_count())
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else methods[0]
            context = multiprocessing.get_context(method)
            self._pool = context.Pool(self.processes)
        return self._pool

    def run(self, payloads: Sequence[tuple]) -> list[tuple]:
        return self._ensure_pool().map(_segment_task, list(payloads))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ProcessSegmentExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_segment_tasks(tracer, fn: Callable,
                      args_per_segment: Sequence[tuple],
                      executor=None) -> list:
    """Run ``fn(*args)`` once per segment through ``executor`` and
    return the per-segment results in segment order.

    When the run is traced, one :class:`TraceContext` is captured at the
    caller's current span, shipped to every worker, and the buffered
    worker spans are merged back under it in segment order — so the
    merged trace looks the same whether the executor was inline or
    process-backed."""
    if executor is None:
        executor = InlineSegmentExecutor()
    context = tracer.context() if tracer.enabled else None
    context_data = context.to_dict() if context is not None else None
    payloads = [(fn, tuple(args), segment, context_data)
                for segment, args in enumerate(args_per_segment)]
    outcomes = executor.run(payloads)
    results = []
    exported: list[dict] = []
    for result, spans in outcomes:
        results.append(result)
        if spans:
            exported.extend(spans)
    if context is not None and exported:
        tracer.merge(context, exported)
    return results


# ---------------------------------------------------------------------------
# The persistent worker pool (real shared-nothing execution)
# ---------------------------------------------------------------------------


@dataclass
class WorkerReply:
    """One worker's superstep outcome, as received by the coordinator."""

    segment: int
    stats: dict
    metrics: dict
    produce_spans: list
    apply_spans: list


def _run_superstep(index: int, segments: int, spec, strategy,
                   registers: dict, recv_cache: dict, outs: dict,
                   ins: dict, shm_threshold: int,
                   context_data: Optional[dict]) -> tuple:
    """One superstep, worker side: produce → ship/overlap → apply.

    The incoming pieces are assembled in origin order with this worker's
    own piece at its own index and empty pieces skipped — exactly the
    order the inline simulation appends them, which is what makes
    ``np.add.at``-style float accumulation in ``spec.apply``
    bit-identical across substrates.
    """
    produce_tracer = apply_tracer = None
    if context_data is not None:
        context = TraceContext.from_dict(context_data)
        produce_tracer = ContextTracer(context)
        apply_tracer = ContextTracer(context)

    tracer = produce_tracer if produce_tracer else NULL_TRACER
    with tracer.span("segment", kind="worker", segment=index):
        outbound = spec.produce(registers)

    assignment = hash_partition_indices(outbound.column(spec.route_key),
                                        segments)
    pieces = split_table(outbound, assignment, segments)

    stats = {"rows_moved": 0, "bytes_moved": 0, "suppressed_rows": 0,
             "suppressed_bytes": 0, "suppressed_batches": 0}
    failures: list[BaseException] = []

    def _ship() -> None:
        # The motion half of the overlap: drains every outbound piece
        # while the main thread runs pre-apply and starts receiving.
        try:
            for dest in range(segments):
                if dest == index:
                    continue
                piece = pieces[dest]
                kind = strategy.classify((index, dest), piece)
                if kind == SEND:
                    stats["bytes_moved"] += wire.send_piece(
                        outs[dest], piece, shm_threshold)
                    stats["rows_moved"] += piece.num_rows
                elif kind == UNCHANGED:
                    wire.send_unchanged(outs[dest])
                    stats["suppressed_rows"] += piece.num_rows
                    stats["suppressed_bytes"] += piece.nbytes()
                    stats["suppressed_batches"] += 1
                else:
                    wire.send_empty(outs[dest])
        except BaseException as exc:  # surfaced after join
            failures.append(exc)

    sender = threading.Thread(target=_ship, name=f"mpp-ship-{index}")
    sender.start()

    tracer = apply_tracer if apply_tracer else NULL_TRACER
    with tracer.span("segment", kind="worker", segment=index):
        # The compute half of the overlap: anything apply can do
        # without incoming pieces runs while the sender drains.
        aux = spec.pre_apply(registers) if spec.pre_apply else None
        incoming = []
        for origin in range(segments):
            if origin == index:
                if pieces[index].num_rows:
                    incoming.append(pieces[index])
                continue
            kind, piece = wire.recv_piece(ins[origin])
            if kind == wire.BATCH:
                recv_cache[origin] = piece
                incoming.append(piece)
            elif kind == wire.UNCHANGED:
                incoming.append(recv_cache[origin])
        registers[spec.state] = spec.apply(registers, incoming, aux)

    sender.join()
    if failures:
        raise failures[0]

    metrics = spec.metrics(registers, outbound) if spec.metrics else {}
    return (stats, metrics,
            produce_tracer.export_spans() if produce_tracer else [],
            apply_tracer.export_spans() if apply_tracer else [])


def _worker_main(index: int, segments: int, cmd, outs: dict, ins: dict,
                 shm_threshold: int) -> None:
    """Resident worker loop: owns its partitions, executes commands."""
    registers: dict = {}
    spec = None
    strategy = None
    recv_cache: dict = {}
    while True:
        try:
            message = cmd.recv()
        except (EOFError, OSError):
            return
        tag = message[0]
        try:
            if tag == "stop":
                return
            if tag == "load":
                registers[message[1]] = message[2]
                cmd.send(("ok",))
            elif tag == "spec":
                spec = message[1]
                strategy = make_exchange_strategy(spec.delta_shuffle)
                recv_cache = {}
                cmd.send(("ok",))
            elif tag == "fetch":
                cmd.send(("table", registers[message[1]]))
            elif tag == "superstep":
                reply = _run_superstep(
                    index, segments, spec, strategy, registers,
                    recv_cache, outs, ins, shm_threshold, message[1])
                cmd.send(("done",) + reply)
            else:
                cmd.send(("error", tag, f"unknown command {tag!r}"))
        except Exception as exc:
            try:
                cmd.send(("error", tag,
                          f"{type(exc).__name__}: {exc}"))
            except (OSError, BrokenPipeError):
                return


class WorkerPool:
    """N resident worker processes forming a shared-nothing cluster.

    Spawned once (per cluster, not per step) and reused across every
    superstep of every loop run against it.  Topology: one duplex
    command pipe coordinator↔worker, plus one one-way data pipe per
    ordered worker pair — worker *i* sends to *j* on ``(i, j)`` and
    receives from *j* on ``(j, i)``, so receiving "from origin *j*" is
    a plain blocking read with no demultiplexing.

    Failure containment: every coordinator wait is bounded by
    ``timeout`` and watches the worker's liveness; a death or stall
    raises :class:`~repro.errors.MppWorkerError` attributing the
    segment, superstep, and operation, after force-stopping the rest of
    the fleet so no orphan survives the error.
    """

    def __init__(self, workers: int, start_method: Optional[str] = None,
                 shm_threshold: int = wire.SHM_THRESHOLD,
                 timeout: float = 120.0):
        if workers < 1:
            raise ValueError("a worker pool needs at least one worker")
        methods = multiprocessing.get_all_start_methods()
        method = start_method or (
            "fork" if "fork" in methods else methods[0])
        context = multiprocessing.get_context(method)
        self.workers = workers
        self.timeout = timeout
        self._trip = 0
        self._closed = False

        self._cmd = []
        child_cmds = []
        for _ in range(workers):
            parent_end, child_end = context.Pipe()
            self._cmd.append(parent_end)
            child_cmds.append(child_end)
        send_map: list[dict] = [{} for _ in range(workers)]
        recv_map: list[dict] = [{} for _ in range(workers)]
        for i in range(workers):
            for j in range(workers):
                if i == j:
                    continue
                recv_end, send_end = context.Pipe(duplex=False)
                send_map[i][j] = send_end
                recv_map[j][i] = recv_end

        self._procs = []
        for i in range(workers):
            process = context.Process(
                target=_worker_main,
                args=(i, workers, child_cmds[i], send_map[i],
                      recv_map[i], shm_threshold),
                daemon=True, name=f"mpp-worker-{i}")
            process.start()
            self._procs.append(process)
        # Drop the coordinator's copies of worker-only pipe ends; the
        # workers keep theirs (inherited or pickled at spawn).
        for i in range(workers):
            child_cmds[i].close()
            for connection in send_map[i].values():
                connection.close()
            for connection in recv_map[i].values():
                connection.close()

    # -- commands -----------------------------------------------------------

    def load(self, name: str, partitions: Sequence) -> None:
        """Install one partition of register ``name`` on each worker."""
        if len(partitions) != self.workers:
            raise ValueError(
                f"{len(partitions)} partitions for {self.workers} workers")
        for connection, partition in zip(self._cmd, partitions):
            connection.send(("load", name, partition))
        for segment in range(self.workers):
            self._await(segment, "ok", "load")

    def set_spec(self, spec) -> None:
        """Install the superstep program (resets delta-shuffle caches)."""
        for connection in self._cmd:
            connection.send(("spec", spec))
        for segment in range(self.workers):
            self._await(segment, "ok", "spec")
        self._trip = 0

    def superstep(self, tracer=None) -> list[WorkerReply]:
        """Run one superstep on every worker; replies in segment order."""
        self._trip += 1
        context_data = None
        if tracer is not None and getattr(tracer, "enabled", False):
            context_data = {"trace_id": tracer.trace_id,
                            "context_id": 0, "path": []}
        for connection in self._cmd:
            connection.send(("superstep", context_data))
        replies = []
        for segment in range(self.workers):
            message = self._await(segment, "done", "superstep")
            replies.append(WorkerReply(segment, *message[1:]))
        return replies

    def fetch(self, name: str) -> list:
        """Gather every worker's partition of register ``name``."""
        for connection in self._cmd:
            connection.send(("fetch", name))
        return [self._await(segment, "table", "fetch")[1]
                for segment in range(self.workers)]

    # -- plumbing -----------------------------------------------------------

    def _await(self, segment: int, expected: str, operation: str):
        connection = self._cmd[segment]
        process = self._procs[segment]
        deadline = time.monotonic() + self.timeout
        message = None
        while True:
            try:
                if connection.poll(0.05):
                    message = connection.recv()
                    break
            except (EOFError, OSError):
                break
            if not process.is_alive():
                # One last drain: the reply may have raced the exit.
                try:
                    if connection.poll(0):
                        message = connection.recv()
                except (EOFError, OSError):
                    pass
                break
            if time.monotonic() > deadline:
                self.shutdown(force=True)
                raise MppWorkerError(
                    f"worker timed out after {self.timeout:.0f}s",
                    segment=segment, superstep=self._trip,
                    operation=operation)
        if message is None:
            self.shutdown(force=True)
            raise MppWorkerError(
                "worker process died", segment=segment,
                superstep=self._trip, operation=operation)
        if message[0] == "error":
            self.shutdown(force=True)
            raise MppWorkerError(
                f"worker failed: {message[2]}", segment=segment,
                superstep=self._trip, operation=message[1])
        if message[0] != expected:
            self.shutdown(force=True)
            raise MppWorkerError(
                f"protocol error: expected {expected!r}, "
                f"got {message[0]!r}", segment=segment,
                superstep=self._trip, operation=operation)
        return message

    def shutdown(self, force: bool = False) -> None:
        """Stop every worker; idempotent, leaves no orphans.

        ``force`` skips the polite stop command (used on error paths
        where workers may be wedged mid-superstep)."""
        if self._closed:
            return
        self._closed = True
        if not force:
            for connection in self._cmd:
                try:
                    connection.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
        for process in self._procs:
            process.join(timeout=0.2 if force else 2.0)
        for process in self._procs:
            if process.is_alive():
                process.terminate()
        for process in self._procs:
            process.join(timeout=2.0)
        # SIGTERM stays *pending* for a stopped (SIGSTOP'd) worker and
        # does nothing for one wedged in uninterruptible state; SIGKILL
        # is the only signal guaranteed to reap it.
        for process in self._procs:
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        for connection in self._cmd:
            try:
                connection.close()
            except OSError:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(force=exc[0] is not None)

    def __del__(self):  # safety net; shutdown() is the real API
        try:
            self.shutdown(force=True)
        except Exception:
            pass
