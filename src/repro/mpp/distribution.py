"""Distribution descriptors for the shared-nothing simulation.

MPPDB is a shared-nothing parallel engine: every table lives hash-
distributed (or replicated) across segments, and the planner inserts
exchange (shuffle / broadcast) motions when an operation needs rows
co-located differently.  The simulation reproduces that layer so the
data-movement accounting behind the paper's engine is a real code path,
not a narrative.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..storage import Column, Table


class DistributionKind(enum.Enum):
    HASHED = "hashed"          # rows placed by hash(key) % segments
    REPLICATED = "replicated"  # full copy on every segment
    ROUND_ROBIN = "round_robin"


@dataclass(frozen=True)
class Distribution:
    kind: DistributionKind
    key_column: Optional[str] = None  # for HASHED

    @classmethod
    def hashed(cls, key_column: str) -> "Distribution":
        return cls(DistributionKind.HASHED, key_column.lower())

    @classmethod
    def replicated(cls) -> "Distribution":
        return cls(DistributionKind.REPLICATED)

    @classmethod
    def round_robin(cls) -> "Distribution":
        return cls(DistributionKind.ROUND_ROBIN)

    def colocated_with(self, other: "Distribution",
                       self_key: str, other_key: str) -> bool:
        """Can an equi-join on (self_key, other_key) run without motion?"""
        if self.kind is DistributionKind.REPLICATED \
                or other.kind is DistributionKind.REPLICATED:
            return True
        return (self.kind is DistributionKind.HASHED
                and other.kind is DistributionKind.HASHED
                and self.key_column == self_key.lower()
                and other.key_column == other_key.lower())


def hash_partition_indices(column: Column, segments: int) -> np.ndarray:
    """Deterministic segment assignment per row; NULL keys go to segment 0."""
    if column.data.dtype == object:
        codes = np.array([hash(v) if v is not None else 0
                          for v in column.to_list()], dtype=np.int64)
    else:
        codes = column.data.astype(np.int64, copy=False)
    # Knuth multiplicative hash keeps nearby keys apart.
    mixed = (codes * np.int64(2654435761)) & np.int64(0x7FFFFFFF)
    out = (mixed % segments).astype(np.int64)
    out[column.mask] = 0
    return out


def split_table(table: Table, assignment: np.ndarray,
                segments: int) -> list[Table]:
    """Split a table into per-segment partitions by assignment vector."""
    return [table.filter(assignment == s) for s in range(segments)]
