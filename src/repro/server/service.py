"""In-process serving front end over a shared Engine.

The paper's Fig. 1 middleware storm is a *client-side* pattern: many
connections each replaying parse → compile → execute round-trips.  To
measure (and amortize) that storm honestly, the repro needs a serving
layer where concurrent clients actually contend for one engine —
that is this module.

Architecture:

* :class:`DatabaseServer` owns the :class:`~repro.engine.engine.Engine`
  and a fixed pool of worker threads.
* Each :class:`ServerClient` (from :meth:`DatabaseServer.connect`) has
  its own :class:`~repro.engine.session.Session` and a FIFO of pending
  requests.  **Dispatch is per-session**: a session runs at most one
  statement at a time (preserving transaction and snapshot semantics),
  but different sessions run on different workers concurrently.
  Workers never block on a busy session — the ready queue holds only
  sessions with runnable work, so a slow iterative query on one
  connection cannot stall another connection's point reads.
* **Admission control** bounds the number of requests inside the
  server (queued + running) across all clients.  A submit over the
  bound fails fast with a structured
  :class:`~repro.errors.AdmissionError` instead of growing an unbounded
  queue — backpressure the caller can see and retry on.
* **Tracing**: with ``trace=True`` the server keeps one
  :class:`~repro.obs.trace.Tracer`; every request executes under a
  per-request :class:`~repro.obs.trace.ContextTracer` whose spans are
  merged back under a lock, so the server trace shows each session's
  statements (parse/compile/execute phases included) grafted onto the
  request that ran them.

Everything is in-process: "client" and "server" share one Python
process, which keeps the measured overheads about scheduling and
compile amortization rather than socket serialization.
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Optional, Union

from ..engine.database import Database
from ..engine.engine import Engine
from ..engine.session import QueryResult
from ..errors import AdmissionError, ReproError
from ..execution import SessionOptions
from ..obs import ContextTracer, Trace, Tracer, build_trace


@dataclass
class ServerStats:
    """Serving-layer counters (engine counters live on the engine)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    peak_outstanding: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


class _Request:
    __slots__ = ("sql", "future", "context")

    def __init__(self, sql, future: Future, context):
        self.sql = sql
        self.future = future
        self.context = context


class ServerClient:
    """One client connection: a session plus its pending-request FIFO.

    Obtained from :meth:`DatabaseServer.connect`.  ``submit`` enqueues
    and returns a :class:`~concurrent.futures.Future`; ``execute``
    blocks for the result.  Requests of one client run strictly in
    submission order, one at a time, on the server's worker pool.
    """

    def __init__(self, server: "DatabaseServer",
                 options: Optional[SessionOptions] = None):
        self._server = server
        self.session = server.engine.create_session(options=options)
        self._pending: deque[_Request] = deque()
        self._in_flight = False
        self._closed = False

    # -- client API --------------------------------------------------------

    def submit(self, sql) -> "Future[QueryResult]":
        """Enqueue one statement; resolves to its QueryResult.

        Raises :class:`AdmissionError` immediately when the server's
        admission bound is reached — the request was never queued."""
        return self._server._submit(self, sql)

    def execute(self, sql) -> QueryResult:
        """Submit and wait; the blocking convenience wrapper."""
        return self.submit(sql).result()

    def close(self) -> None:
        """Stop accepting submissions on this client.

        Already-queued requests still run (draining preserves the
        session's statement order)."""
        with self._server._lock:
            self._closed = True

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class DatabaseServer:
    """Thread-pool front end dispatching per-session over one Engine."""

    def __init__(self, engine: Optional[Engine] = None, *,
                 workers: int = 4, queue_depth: int = 32,
                 trace: bool = False,
                 options: Optional[SessionOptions] = None):
        if queue_depth < 1:
            raise ReproError("queue_depth must be at least 1")
        if workers < 1:
            raise ReproError("workers must be at least 1")
        self.engine = engine if engine is not None else Engine(options)
        self.queue_depth = queue_depth
        self.stats = ServerStats()
        self.tracer: Optional[Tracer] = \
            Tracer("server") if trace else None
        self._trace_lock = threading.Lock()
        # Guards admission state and every client's pending/in-flight
        # flags; the ready queue holds only clients with runnable work.
        self._lock = threading.Lock()
        self._outstanding = 0
        self._ready: "queue.Queue[Optional[ServerClient]]" = queue.Queue()
        self._shutdown = False
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-server-{i}", daemon=True)
            for i in range(workers)]
        for thread in self._workers:
            thread.start()

    # -- connections -------------------------------------------------------

    def connect(self, options: Optional[SessionOptions] = None
                ) -> ServerClient:
        """Open a new client connection (its own Session)."""
        if self._shutdown:
            raise ReproError("server is shut down")
        return ServerClient(self, options=options)

    # -- submission / admission -------------------------------------------

    def _submit(self, client: ServerClient, sql) -> Future:
        with self._lock:
            if self._shutdown or client._closed:
                raise ReproError("connection is closed")
            if self._outstanding >= self.queue_depth:
                self.stats.rejected += 1
                raise AdmissionError(
                    "admission queue full",
                    queue_depth=self.queue_depth,
                    outstanding=self._outstanding)
            self._outstanding += 1
            self.stats.submitted += 1
            self.stats.peak_outstanding = max(
                self.stats.peak_outstanding, self._outstanding)
            context = self._capture_context(client, sql)
            request = _Request(sql, Future(), context)
            client._pending.append(request)
            if not client._in_flight:
                client._in_flight = True
                self._ready.put(client)
        return request.future

    def _capture_context(self, client: ServerClient, sql):
        """Pin a merge point for this request's spans (trace mode)."""
        if self.tracer is None:
            return None
        with self._trace_lock:
            return self.tracer.context()

    # -- worker side -------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            client = self._ready.get()
            if client is None:
                break
            with self._lock:
                request = client._pending.popleft()
            try:
                result = self._run(client, request)
            except BaseException as exc:  # propagate to the waiter
                failed = True
                request.future.set_exception(exc)
            else:
                failed = False
                request.future.set_result(result)
            with self._lock:
                if failed:
                    self.stats.failed += 1
                else:
                    self.stats.completed += 1
                self._outstanding -= 1
                if client._pending:
                    self._ready.put(client)
                else:
                    client._in_flight = False

    def _run(self, client: ServerClient, request: _Request) -> QueryResult:
        session = client.session
        if request.context is None:
            return session.execute(request.sql)
        worker_tracer = ContextTracer(request.context)
        try:
            with worker_tracer.span(
                    "request", kind="session",
                    session=session.session_id,
                    sql=request.sql if isinstance(request.sql, str)
                    else type(request.sql).__name__):
                return session.execute(request.sql, tracer=worker_tracer)
        finally:
            spans = worker_tracer.export_spans()
            with self._trace_lock:
                self.tracer.merge(request.context, spans)

    # -- lifecycle / introspection ----------------------------------------

    def drain(self) -> None:
        """Block until every queued request has completed."""
        while True:
            with self._lock:
                if self._outstanding == 0:
                    return
            threading.Event().wait(0.001)

    def shutdown(self, wait: bool = True) -> None:
        """Reject new submissions; optionally wait for queued work."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        if wait:
            self.drain()
        for _ in self._workers:
            self._ready.put(None)
        for thread in self._workers:
            thread.join()

    def trace(self) -> Trace:
        """Freeze and return the server-side trace (trace mode only)."""
        if self.tracer is None:
            raise ReproError(
                "server tracing is off: construct with trace=True")
        with self._trace_lock:
            return build_trace(self.tracer)

    def metrics_snapshot(self) -> dict:
        """Engine metrics plus the serving-layer counters as gauges."""
        with self._lock:
            counters = self.stats.snapshot()
        self.engine.metrics.ingest(counters, prefix="server.")
        return self.engine.metrics_snapshot()

    def __enter__(self) -> "DatabaseServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def serve(engine: Union[Engine, Database, None] = None, *,
          workers: int = 4, queue_depth: int = 32, trace: bool = False,
          options: Optional[SessionOptions] = None) -> DatabaseServer:
    """Start an in-process server over ``engine``.

    Accepts an :class:`Engine`, a :class:`Database` (its engine is
    served — handy for loading data through the embedded façade first),
    or ``None`` for a fresh engine.  Use as a context manager::

        with serve(db, workers=4) as server:
            with server.connect() as client:
                client.execute("SELECT ...")
    """
    if isinstance(engine, Database):
        engine = engine.engine
    return DatabaseServer(engine, workers=workers,
                          queue_depth=queue_depth, trace=trace,
                          options=options)
