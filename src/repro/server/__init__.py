"""In-process multi-client serving layer (see repro.server.service)."""

from .service import DatabaseServer, ServerClient, ServerStats, serve

__all__ = [
    "DatabaseServer",
    "ServerClient",
    "ServerStats",
    "serve",
]
