"""Static analysis for the engine's two IRs (the ISSUE-5 verifier).

Two layers live here:

* **IR verifier** — machine-checked invariants over logical plans
  (:mod:`repro.verify.plans`) and step programs
  (:mod:`repro.verify.programs`).  It runs after plan building, after
  each rewrite pass (hooked into :mod:`repro.rewrite.framework`), and
  after program compilation; violations raise a structured
  :class:`repro.errors.VerificationError` naming the pass that produced
  the bad IR.  Enabled per session via the ``enable_plan_verifier``
  option, which defaults on under pytest/smoke runs.

* **Engine lint** — AST-based repo-specific rules over the source tree
  (:mod:`repro.verify.lint`), exposed as the ``repro-lint`` console
  script and wired into the smoke suite.
"""

from ..errors import VerificationError
from .exchange import check_exchange_plan, verify_exchange_plan
from .plans import check_plan, verify_plan
from .programs import VerificationReport, check_program, verify_program
from .storage import check_segmented_table, verify_segmented_table

__all__ = [
    "VerificationError",
    "VerificationReport",
    "check_exchange_plan",
    "check_plan",
    "check_program",
    "check_segmented_table",
    "verify_exchange_plan",
    "verify_plan",
    "verify_program",
    "verify_segmented_table",
]
