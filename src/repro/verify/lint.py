"""Engine lint: AST-based repo-specific rules (the ``repro-lint`` CLI).

Five rule families, each encoding a convention a refactor established
but nothing enforced:

* **handler-coverage** — every ``Step`` subclass declared in
  :mod:`repro.plan.program` has a ``@handles(...)`` registration in
  :mod:`repro.runtime.handlers`, and every registration names a real
  ``Step`` subclass.  A step without a handler fails at run time with an
  ``unknown step type`` dispatch error; this catches it statically.
* **mutation-api** — handler modules touch ``ctx.registry`` only through
  the documented mutation API (store/fetch/exists/rename/drop) and the
  catalog only through read accessors (get/peek/exists); private
  attribute access on either would bypass the accounting (renames,
  bytes released, metadata lookups) the overhead model reads.
* **deprecated-import** — no source module imports the deprecated
  ``repro.core.runner`` internals; the compat shims themselves (and the
  ``repro.core`` package exports) are the only exception.
* **tracer-discipline** — span trees are built only through
  :mod:`repro.obs`: no ``Tracer()``/``Span()`` construction outside the
  known entry points, and every ``tracer.start(...)`` call sits under an
  ``enabled``/``is not None`` guard so the untraced hot path never pays
  for span objects (``NULL_TRACER`` short-circuits ``span()`` but a bare
  unguarded ``start`` defeats the null-object pattern).
* **engine-layering** — the Engine/Session split (PR 9) flows strictly
  downward: the shared :class:`~repro.engine.engine.Engine` must not
  store session-scoped state (a registry, transaction manager, tracer,
  pinned snapshot, ...) on itself, nor import the session module at
  module level.  Session state reachable from the engine would be
  silently shared across connections — exactly the aliasing bug class
  the split exists to make impossible.

Run as ``repro-lint`` (see ``[project.scripts]``) or
``python -m repro.verify.lint``; exits non-zero on any finding.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

_PACKAGE_ROOT = Path(__file__).resolve().parents[1]  # src/repro

# Modules allowed to construct Tracer objects: the obs subsystem itself
# plus the statement entry points that decide whether a run is traced —
# including the worker-process entry point, where a ContextTracer is the
# only way spans can exist at all.
_TRACER_BUILDERS = (
    "obs/",
    "engine/database.py",
    "engine/session.py",
    "middleware/driver.py",
    "procedures/runner.py",
    "mpp/workers.py",
    "server/",
)

# Attribute names that are session-scoped by design: finding the Engine
# storing one of these on itself means per-connection state has leaked
# into the shared layer.
_SESSION_SCOPED_ATTRS = frozenset({
    "session",
    "sessions",
    "registry",
    "transactions",
    "tracer",
    "last_trace",
    "_last_trace",
    "_trace_loops",
    "last_snapshot",
    "snapshot",
})

# The compat shims re-export the deprecated names on purpose.
_DEPRECATED_IMPORT_EXEMPT = (
    "core/__init__.py",
    "core/runner.py",
    "core/loop.py",
)

_REGISTRY_API = frozenset({"store", "fetch", "exists", "rename", "drop"})
_CATALOG_API = frozenset({"get", "peek", "exists"})


@dataclass
class LintIssue:
    """One finding: a file/line plus the rule that fired."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _relative(path: Path, root: Path) -> str:
    try:
        return str(path.relative_to(root))
    except ValueError:
        return str(path)


def _parse_tree(path: Path) -> Optional[ast.Module]:
    try:
        return ast.parse(path.read_text(), filename=str(path))
    except SyntaxError:
        return None


def _parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


class Linter:
    """Runs every rule over one source tree (``src/repro`` by default)."""

    def __init__(self, root: Optional[Path] = None):
        self.root = root or _PACKAGE_ROOT
        self.issues: list[LintIssue] = []
        self._trees: dict[Path, ast.Module] = {}
        for path in sorted(self.root.rglob("*.py")):
            tree = _parse_tree(path)
            if tree is None:
                self._note(path, 1, "parse", "file does not parse")
            else:
                self._trees[path] = tree

    def _note(self, path: Path, line: int, rule: str,
              message: str) -> None:
        self.issues.append(
            LintIssue(_relative(path, self.root), line, rule, message))

    def _rel(self, path: Path) -> str:
        return _relative(path, self.root).replace("\\", "/")

    # -- rule 1: handler coverage ------------------------------------------

    def check_handler_coverage(self) -> None:
        program = self.root / "plan" / "program.py"
        tree = self._trees.get(program)
        if tree is None:
            self._note(program, 1, "handler-coverage",
                       "repro/plan/program.py not found")
            return
        steps: dict[str, int] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and any(
                    isinstance(base, ast.Name) and base.id == "Step"
                    for base in node.bases):
                steps[node.name] = node.lineno

        handled: dict[str, tuple[Path, int]] = {}
        for path, module in self._trees.items():
            if "runtime/handlers" not in self._rel(path):
                continue
            for node in ast.walk(module):
                if not isinstance(node, ast.FunctionDef):
                    continue
                for decorator in node.decorator_list:
                    if isinstance(decorator, ast.Call) and isinstance(
                            decorator.func, ast.Name) \
                            and decorator.func.id == "handles":
                        for arg in decorator.args:
                            if isinstance(arg, ast.Name):
                                handled[arg.id] = (path, decorator.lineno)

        for name, line in sorted(steps.items()):
            if name not in handled:
                self._note(program, line, "handler-coverage",
                           f"Step subclass {name} has no @handles "
                           "registration in repro.runtime.handlers")
        for name, (path, line) in sorted(handled.items()):
            if name not in steps:
                self._note(path, line, "handler-coverage",
                           f"@handles({name}) names no Step subclass "
                           "in repro.plan.program")

    # -- rule 2: handler mutation API --------------------------------------

    def check_mutation_api(self) -> None:
        for path, module in self._trees.items():
            if "runtime/handlers" not in self._rel(path):
                continue
            for node in ast.walk(module):
                if not isinstance(node, ast.Attribute):
                    continue
                owner = node.value
                if not isinstance(owner, (ast.Attribute, ast.Name)):
                    continue
                owner_name = owner.attr if isinstance(
                    owner, ast.Attribute) else owner.id
                if owner_name == "registry" and (
                        node.attr.startswith("_")
                        or node.attr not in _REGISTRY_API):
                    self._note(path, node.lineno, "mutation-api",
                               f"registry.{node.attr} is outside the "
                               "documented mutation API "
                               f"({'/'.join(sorted(_REGISTRY_API))})")
                elif owner_name == "catalog" and (
                        node.attr.startswith("_")
                        or node.attr not in _CATALOG_API):
                    self._note(path, node.lineno, "mutation-api",
                               f"catalog.{node.attr} is outside the "
                               "read-only accessors handlers may use "
                               f"({'/'.join(sorted(_CATALOG_API))})")

    # -- rule 3: deprecated imports ----------------------------------------

    def check_deprecated_imports(self) -> None:
        for path, module in self._trees.items():
            rel = self._rel(path)
            if any(rel.endswith(exempt)
                   for exempt in _DEPRECATED_IMPORT_EXEMPT):
                continue
            for node in ast.walk(module):
                if isinstance(node, ast.ImportFrom):
                    name = node.module or ""
                    if name == "core.runner" \
                            or name.endswith(".core.runner"):
                        self._note(path, node.lineno, "deprecated-import",
                                   "imports the deprecated "
                                   "repro.core.runner shim; use "
                                   "repro.runtime instead")
                elif isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name.endswith("core.runner"):
                            self._note(path, node.lineno,
                                       "deprecated-import",
                                       "imports the deprecated "
                                       "repro.core.runner shim; use "
                                       "repro.runtime instead")

    # -- rule 4: tracer discipline -----------------------------------------

    def _in_obs(self, path: Path) -> bool:
        return self._rel(path).startswith("obs/")

    def check_tracer_discipline(self) -> None:
        for path, module in self._trees.items():
            if self._in_obs(path):
                continue
            rel = self._rel(path)
            may_build = any(rel.startswith(prefix) or rel == prefix
                            for prefix in _TRACER_BUILDERS)
            parents = None
            for node in ast.walk(module):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Name) \
                        and func.id in ("Tracer", "Span") \
                        and not may_build:
                    self._note(path, node.lineno, "tracer-discipline",
                               f"bare {func.id}() construction outside "
                               "the traced entry points; pass a tracer "
                               "down or use NULL_TRACER")
                if isinstance(func, ast.Attribute) \
                        and func.attr == "start" \
                        and self._is_tracer_receiver(func.value):
                    if parents is None:
                        parents = _parents(module)
                    if not self._guarded(node, parents):
                        self._note(path, node.lineno, "tracer-discipline",
                                   "tracer.start() without an "
                                   "enabled/is-not-None guard bypasses "
                                   "the NULL_TRACER fast path")

    @staticmethod
    def _is_tracer_receiver(node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return "tracer" in node.id.lower()
        if isinstance(node, ast.Attribute):
            return "tracer" in node.attr.lower()
        return False

    @staticmethod
    def _guarded(node: ast.AST,
                 parents: dict[ast.AST, ast.AST]) -> bool:
        cursor = parents.get(node)
        while cursor is not None:
            if isinstance(cursor, (ast.If, ast.IfExp)):
                dump = ast.dump(cursor.test)
                if "attr='enabled'" in dump or "IsNot()" in dump:
                    return True
            cursor = parents.get(cursor)
        return False

    # -- rule 5: engine layering -------------------------------------------

    def check_engine_layering(self) -> None:
        """The shared Engine must not hold (or structurally depend on)
        session-scoped state — see the module docstring."""
        for path, module in self._trees.items():
            if self._rel(path) != "engine/engine.py":
                continue
            for node in module.body:
                if isinstance(node, ast.ImportFrom) and (
                        (node.module or "").split(".")[-1] == "session"):
                    self._note(path, node.lineno, "engine-layering",
                               "module-level import of the session "
                               "module from the engine: the dependency "
                               "must flow session → engine only (use a "
                               "function-level import)")
            for node in ast.walk(module):
                if not isinstance(node, ast.ClassDef) \
                        or node.name != "Engine":
                    continue
                for inner in ast.walk(node):
                    if not isinstance(inner, (ast.Assign, ast.AnnAssign)):
                        continue
                    targets = inner.targets if isinstance(
                        inner, ast.Assign) else [inner.target]
                    for target in targets:
                        if isinstance(target, ast.Attribute) \
                                and isinstance(target.value, ast.Name) \
                                and target.value.id == "self" \
                                and target.attr in _SESSION_SCOPED_ATTRS:
                            self._note(
                                path, inner.lineno, "engine-layering",
                                f"Engine stores session-scoped state "
                                f"self.{target.attr}; per-connection "
                                "state belongs on Session, never on "
                                "the shared Engine")

    # -- entry point -------------------------------------------------------

    def run(self) -> list[LintIssue]:
        self.check_handler_coverage()
        self.check_mutation_api()
        self.check_deprecated_imports()
        self.check_tracer_discipline()
        self.check_engine_layering()
        return self.issues

    @property
    def file_count(self) -> int:
        return len(self._trees)


def run_lint(root: Optional[Path] = None) -> list[LintIssue]:
    """All lint findings over ``root`` (default: the installed package)."""
    return Linter(root).run()


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based engine lint (handler coverage, mutation "
                    "API, deprecated imports, tracer discipline, "
                    "engine layering).")
    parser.add_argument("--root", type=Path, default=None,
                        help="package root to lint (default: the "
                             "installed repro package)")
    args = parser.parse_args(argv)

    linter = Linter(args.root)
    issues = linter.run()
    for issue in issues:
        print(issue.render())
    if issues:
        print(f"repro-lint: {len(issues)} issue(s) in "
              f"{linter.file_count} files")
        return 1
    print(f"repro-lint: ok ({linter.file_count} files, 5 rule families)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
