"""Logical-plan verifier: schema and type propagation invariants.

Every operator in a well-formed plan satisfies three properties the
builder establishes and every rewrite must preserve:

* **resolution** — every column reference inside the operator's
  expressions resolves to exactly one field of the operator's input;
* **typing** — every expression has a static type under
  :func:`repro.plan.binding.infer_type`, and declared output field types
  are coercion-compatible with the types the expressions produce;
* **arity** — declared output field lists line up positionally with what
  the operator computes (projection lists, set-operation arms, VALUES
  rows, scan schemas).

``check_plan`` walks a plan and returns the violations as strings;
``verify_plan`` raises :class:`VerificationError` naming the pass that
produced the plan.  Checks are deliberately *coercion-lenient* (a field
declared FLOAT fed by an INTEGER expression is fine — the executor
widens) so the verifier never rejects a plan the executor would run.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import BindError, TypeCheckError, VerificationError
from ..plan.binding import infer_type, resolve_column
from ..plan.logical import (
    Field,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalOp,
    LogicalProject,
    LogicalRename,
    LogicalScan,
    LogicalSemiJoin,
    LogicalSetDifference,
    LogicalSort,
    LogicalTempScan,
    LogicalUnion,
    LogicalValues,
)
from ..sql import ast
from ..types import SqlType, common_type

# Filter predicates and join conditions must be boolean-valued; NULL
# literals are admitted (three-valued logic folds them to UNKNOWN).
_PREDICATE_TYPES = (SqlType.BOOLEAN, SqlType.NULL)


class PlanChecker:
    """Accumulates violations over one plan tree.

    ``catalog`` (a :class:`repro.storage.Catalog`) unlocks the
    scan-vs-schema checks; lookups go through :meth:`Catalog.peek` so
    verification never perturbs the metadata-overhead counters.
    """

    def __init__(self, catalog=None):
        self.catalog = catalog
        self.violations: list[str] = []
        self.checks = 0

    # -- entry point -------------------------------------------------------

    def check(self, plan: LogicalOp) -> list[str]:
        for op in plan.walk():
            self._check_op(op)
        return self.violations

    # -- helpers -----------------------------------------------------------

    def _note(self, op: LogicalOp, message: str) -> None:
        self.violations.append(f"{op.label()}: {message}")

    def _refs_resolve(self, op: LogicalOp, expr: ast.Expr,
                      fields: Sequence[Field], where: str) -> None:
        """Every column reference in ``expr`` resolves against ``fields``."""
        for node in expr.walk():
            if not isinstance(node, ast.ColumnRef):
                continue
            self.checks += 1
            try:
                resolve_column(fields, node)
            except BindError as exc:
                self._note(op, f"{where}: {exc}")

    def _type_of(self, op: LogicalOp, expr: ast.Expr,
                 fields: Sequence[Field],
                 where: str) -> Optional[SqlType]:
        """Static type of ``expr``, or None (with a violation noted)."""
        self.checks += 1
        try:
            return infer_type(expr, fields)
        except (BindError, TypeCheckError) as exc:
            self._note(op, f"{where}: {exc}")
            return None

    def _predicate(self, op: LogicalOp, expr: ast.Expr,
                   fields: Sequence[Field], where: str) -> None:
        self._refs_resolve(op, expr, fields, where)
        inferred = self._type_of(op, expr, fields, where)
        if inferred is not None and inferred not in _PREDICATE_TYPES:
            self._note(op, f"{where}: predicate has type {inferred}, "
                           "expected BOOLEAN")

    def _compatible(self, op: LogicalOp, produced: Optional[SqlType],
                    declared: SqlType, where: str) -> None:
        """Declared field type must be coercible with the produced type."""
        if produced is None:
            return
        self.checks += 1
        try:
            common_type(produced, declared)
        except TypeCheckError:
            self._note(op, f"{where}: produces {produced} but the output "
                           f"field declares {declared}")

    # -- per-operator invariants -------------------------------------------

    def _check_op(self, op: LogicalOp) -> None:
        if isinstance(op, LogicalScan):
            self._check_scan(op)
        elif isinstance(op, LogicalTempScan):
            self.checks += 1
            if not op.fields:
                self._note(op, "temp scan declares no output fields")
        elif isinstance(op, LogicalValues):
            self._check_values(op)
        elif isinstance(op, LogicalFilter):
            self._predicate(op, op.predicate, op.child.fields, "WHERE")
        elif isinstance(op, LogicalProject):
            self._check_project(op)
        elif isinstance(op, LogicalRename):
            self._check_rename(op)
        elif isinstance(op, LogicalJoin):
            if op.condition is not None:
                self._predicate(op, op.condition, op.fields, "ON")
        elif isinstance(op, LogicalSemiJoin):
            self._check_semi_join(op)
        elif isinstance(op, LogicalAggregate):
            self._check_aggregate(op)
        elif isinstance(op, (LogicalUnion, LogicalSetDifference)):
            self._check_set_op(op)
        elif isinstance(op, LogicalSort):
            for expr, _asc in op.keys:
                self._refs_resolve(op, expr, op.child.fields, "ORDER BY")
        # Distinct / Limit add no expressions or fields of their own.

    def _check_scan(self, op: LogicalScan) -> None:
        if self.catalog is None:
            return
        self.checks += 1
        table = self.catalog.peek(op.table_name)
        if table is None:
            self._note(op, f"scans unknown table {op.table_name!r}")
            return
        schema = {c.name: c.sql_type for c in table.schema.columns}
        for field in op.fields:
            self.checks += 1
            declared = schema.get(field.name)
            if declared is None:
                self._note(op, f"column {field.name!r} is not in the "
                               f"schema of {op.table_name!r}")
            elif declared is not field.sql_type:
                self._note(op, f"column {field.name!r} declares "
                               f"{field.sql_type}, schema says {declared}")

    def _check_values(self, op: LogicalValues) -> None:
        width = len(op.fields)
        for i, row in enumerate(op.rows):
            self.checks += 1
            if len(row) != width:
                self._note(op, f"row {i} has {len(row)} values for "
                               f"{width} declared columns")

    def _check_project(self, op: LogicalProject) -> None:
        self.checks += 1
        if len(op.exprs) != len(op.fields):
            self._note(op, f"{len(op.exprs)} expressions for "
                           f"{len(op.fields)} output fields")
            return
        for (expr, name), field in zip(op.exprs, op.fields):
            self._refs_resolve(op, expr, op.child.fields, name)
            produced = self._type_of(op, expr, op.child.fields, name)
            self._compatible(op, produced, field.sql_type, name)

    def _check_rename(self, op: LogicalRename) -> None:
        self.checks += 1
        if len(op.child.fields) != len(op.fields):
            self._note(op, f"relabels {len(op.child.fields)} columns "
                           f"as {len(op.fields)}")
            return
        for child_field, field in zip(op.child.fields, op.fields):
            self._compatible(op, child_field.sql_type, field.sql_type,
                             field.name)

    def _check_semi_join(self, op: LogicalSemiJoin) -> None:
        combined = (*op.left.fields, *op.right.fields)
        if op.condition is not None:
            self._predicate(op, op.condition, combined, "ON")
        if op.probe_expr is not None:
            self._refs_resolve(op, op.probe_expr, op.left.fields, "probe")
        if op.key_expr is not None:
            self._refs_resolve(op, op.key_expr, op.right.fields, "key")

    def _slot_fields(self, op: LogicalAggregate) -> list[Field]:
        """The key/aggregate slot row the outputs and HAVING bind over."""
        slots: list[Field] = []
        for expr, slot in op.keys:
            produced = self._type_of(op, expr, op.child.fields, slot)
            slots.append(Field(None, slot, produced or SqlType.NULL))
        for spec in op.aggregates:
            produced = self._type_of(op, spec.call, op.child.fields,
                                     spec.name)
            slots.append(Field(None, spec.name, produced or SqlType.NULL))
        return slots

    def _check_aggregate(self, op: LogicalAggregate) -> None:
        for expr, slot in op.keys:
            self._refs_resolve(op, expr, op.child.fields, f"key {slot}")
        for spec in op.aggregates:
            for arg in spec.call.args:
                # count(*) carries a Star argument; nothing to resolve.
                if not isinstance(arg, ast.Star):
                    self._refs_resolve(op, arg, op.child.fields, spec.name)
        slots = self._slot_fields(op)
        self.checks += 1
        if len(op.outputs) != len(op.fields):
            self._note(op, f"{len(op.outputs)} outputs for "
                           f"{len(op.fields)} output fields")
            return
        for (expr, name), field in zip(op.outputs, op.fields):
            self._refs_resolve(op, expr, slots, name)
            produced = self._type_of(op, expr, slots, name)
            self._compatible(op, produced, field.sql_type, name)
        if op.having is not None:
            self._predicate(op, op.having, slots, "HAVING")

    def _check_set_op(self, op) -> None:
        arms = (op.left, op.right)
        width = len(op.fields)
        for arm in arms:
            self.checks += 1
            if len(arm.fields) != width:
                self._note(op, f"arm produces {len(arm.fields)} columns "
                               f"for {width} declared")
                return
        for left_field, right_field, field in zip(
                op.left.fields, op.right.fields, op.fields):
            self._compatible(op, left_field.sql_type, field.sql_type,
                             field.name)
            self._compatible(op, right_field.sql_type, field.sql_type,
                             field.name)


def check_plan(plan: LogicalOp, catalog=None) -> list[str]:
    """All schema/type violations in ``plan`` (empty when well-formed)."""
    return PlanChecker(catalog).check(plan)


def verify_plan(plan: LogicalOp, pass_name: str, catalog=None) -> int:
    """Raise :class:`VerificationError` if ``plan`` is malformed.

    Returns the number of invariants checked, for verdict reporting.
    """
    checker = PlanChecker(catalog)
    violations = checker.check(plan)
    if violations:
        raise VerificationError(pass_name, violations)
    return checker.checks
