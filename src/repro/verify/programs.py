"""Step-program verifier: control-flow, dataflow and strategy invariants.

A compiled :class:`repro.plan.program.Program` is a small CFG: most steps
fall through, ``LoopStep`` may jump backward, and the delta steps carry
forward jumps (gate → full body / done, apply → increment / full body).
This module checks the invariants every emitter and rewrite must
preserve:

* **control flow** — jump targets in range (no unpatched ``-1``), loops
  well-nested, one ``InitLoopStep``/``LoopStep`` pair per loop (plus an
  ``IncrementLoopStep`` for counted loops), the ``ReturnStep`` present
  and reachable, every step reachable;
* **dataflow** — no step reads a registry name before a
  ``MaterializeStep``/``CopyStep``/``SnapshotStep`` defines it on *every*
  path (must-defined analysis over the CFG; ``RenameStep``/``CopyStep``
  kill their source), every ``SnapshotStep`` is consumed downstream, and
  ``DropStep`` never kills a live name (backward liveness);
* **strategy legality** — semi-naive delta programs carry either the
  gate/partition/apply/capture quartet in order with consistent jump
  targets, or (fusion on) a single ``DeltaFusedStep`` paired with the
  capture step and the same three jump targets; rename-in-place only
  moves a table straight onto the CTE name when the body has no WHERE
  clause (WHERE bodies must move the *merge* result, built from the
  duplicate-checked working table);
* **schema flow** — every embedded logical plan passes the plan verifier
  (:mod:`repro.verify.plans`), and materialization column lists match
  plan arity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import VerificationError
from ..plan.logical import LogicalOp, LogicalTempScan
from ..plan.program import (
    CopyStep,
    CountUpdatesStep,
    DeltaApplyStep,
    DeltaCaptureStep,
    DeltaFusedStep,
    DeltaGateStep,
    DeltaPartitionStep,
    DropStep,
    DuplicateCheckStep,
    IncrementLoopStep,
    InitLoopStep,
    LoopStep,
    MaterializeStep,
    Program,
    RecursiveMergeStep,
    RenameStep,
    ReturnStep,
    SnapshotStep,
    Step,
)
from ..sql import ast
from .plans import PlanChecker


@dataclass
class VerificationReport:
    """Outcome of one successful verification pass."""

    pass_name: str
    steps: int
    checks: int

    def verdict(self) -> str:
        return f"ok ({self.checks} checks over {self.steps} steps)"


@dataclass
class _Flow:
    """Registry-name effects of one step, for the dataflow analyses."""

    reads: frozenset[str]
    defines: frozenset[str]
    kills: frozenset[str]


_EMPTY = frozenset()


def _plan_temp_reads(plan: LogicalOp) -> frozenset[str]:
    return frozenset(op.result_name.lower() for op in plan.walk()
                     if isinstance(op, LogicalTempScan))


def _step_flow(step: Step) -> _Flow:
    if isinstance(step, MaterializeStep):
        return _Flow(_plan_temp_reads(step.plan),
                     frozenset({step.result_name.lower()}), _EMPTY)
    if isinstance(step, (RenameStep, CopyStep)):
        # The copy handler releases its source after the physical move,
        # so both movement steps kill the source name.
        source = frozenset({step.source.lower()})
        return _Flow(source, frozenset({step.target.lower()}), source)
    if isinstance(step, SnapshotStep):
        return _Flow(frozenset({step.source.lower()}),
                     frozenset({step.target.lower()}), _EMPTY)
    if isinstance(step, DuplicateCheckStep):
        return _Flow(frozenset({step.result_name.lower()}), _EMPTY, _EMPTY)
    if isinstance(step, CountUpdatesStep):
        return _Flow(frozenset({step.previous.lower(),
                                step.current.lower()}), _EMPTY, _EMPTY)
    if isinstance(step, RecursiveMergeStep):
        return _Flow(frozenset({step.result.lower(),
                                step.candidate.lower()}),
                     frozenset({step.result.lower(),
                                step.working.lower()}), _EMPTY)
    if isinstance(step, DeltaPartitionStep):
        return _Flow(frozenset({step.spec.cte_result.lower()}),
                     frozenset({step.spec.partition.lower()}), _EMPTY)
    if isinstance(step, DeltaApplyStep):
        return _Flow(frozenset({step.spec.delta_working.lower(),
                                step.spec.cte_result.lower()}),
                     frozenset({step.spec.cte_result.lower()}), _EMPTY)
    if isinstance(step, DeltaFusedStep):
        # One batched pass: reads the CTE table (and whatever temp
        # results the delta body scans), defines the partition, the
        # recomputed delta-working rows, and the merged CTE table.  The
        # delta body's anchor scan reads the partition this same step
        # defines internally, so it is excluded from the reads.
        defines = frozenset({step.spec.cte_result.lower(),
                             step.spec.partition.lower(),
                             step.spec.delta_working.lower()})
        reads = (frozenset({step.spec.cte_result.lower()})
                 | _plan_temp_reads(step.plan)) \
            - frozenset({step.spec.partition.lower(),
                         step.spec.delta_working.lower()})
        return _Flow(reads, defines, _EMPTY)
    if isinstance(step, DeltaCaptureStep):
        return _Flow(frozenset({step.spec.cte_result.lower(),
                                step.previous.lower()}), _EMPTY, _EMPTY)
    if isinstance(step, ReturnStep):
        return _Flow(_plan_temp_reads(step.plan), _EMPTY, _EMPTY)
    if isinstance(step, DropStep):
        return _Flow(_EMPTY, _EMPTY,
                     frozenset(name.lower() for name in step.names))
    if isinstance(step, LoopStep):
        return _Flow(_EMPTY, _EMPTY, _EMPTY)  # spec reads added below
    return _Flow(_EMPTY, _EMPTY, _EMPTY)


class ProgramChecker:
    """Accumulates violations over one step program."""

    def __init__(self, program: Program, catalog=None):
        self.program = program
        self.steps = program.steps
        self.catalog = catalog
        self.violations: list[str] = []
        self.checks = 0

    def _note(self, index: int, message: str) -> None:
        step = self.steps[index]
        self.violations.append(
            f"step {index + 1} ({type(step).__name__}): {message}")

    # -- CFG ---------------------------------------------------------------

    def _successors(self, index: int) -> list[int]:
        step = self.steps[index]
        n = len(self.steps)
        if isinstance(step, LoopStep):
            succ = [step.jump_to, index + 1]
        elif isinstance(step, DeltaGateStep):
            succ = [index + 1, step.jump_full, step.jump_done]
        elif isinstance(step, DeltaApplyStep):
            succ = [step.jump_to, step.jump_full]
        elif isinstance(step, DeltaFusedStep):
            # Never falls through: full body, done, or applied.
            succ = [step.jump_to, step.jump_full, step.jump_done]
        else:
            succ = [index + 1]
        return [s for s in succ if 0 <= s < n]

    def _jump_targets(self, step: Step) -> list[tuple[str, int]]:
        if isinstance(step, LoopStep):
            return [("jump_to", step.jump_to)]
        if isinstance(step, DeltaGateStep):
            return [("jump_full", step.jump_full),
                    ("jump_done", step.jump_done)]
        if isinstance(step, DeltaApplyStep):
            return [("jump_to", step.jump_to),
                    ("jump_full", step.jump_full)]
        if isinstance(step, DeltaFusedStep):
            return [("jump_to", step.jump_to),
                    ("jump_full", step.jump_full),
                    ("jump_done", step.jump_done)]
        return []

    # -- structural checks -------------------------------------------------

    def check_structure(self) -> None:
        n = len(self.steps)
        self.checks += 1
        if n == 0:
            self.violations.append("program has no steps")
            return
        for i, step in enumerate(self.steps):
            for name, target in self._jump_targets(step):
                self.checks += 1
                if target < 0:
                    self._note(i, f"{name} was never patched "
                                  f"(still {target})")
                elif target >= n:
                    self._note(i, f"{name} targets step {target + 1}, "
                                  f"past the end of the program ({n})")
            if isinstance(step, (MaterializeStep, DeltaFusedStep)):
                self.checks += 1
                if len(step.column_names) != len(step.plan.fields):
                    self._note(i, f"stores {len(step.column_names)} "
                                  f"column names for a plan producing "
                                  f"{len(step.plan.fields)} columns")
        self._check_returns()
        self._check_loops()

    def _check_returns(self) -> None:
        returns = [i for i, s in enumerate(self.steps)
                   if isinstance(s, ReturnStep)]
        self.checks += 1
        if len(returns) != 1:
            self.violations.append(
                f"program has {len(returns)} ReturnSteps, expected 1")

    def _check_loops(self) -> None:
        inits: dict[int, int] = {}
        increments: dict[int, int] = {}
        loop_steps: dict[int, int] = {}
        for i, step in enumerate(self.steps):
            if isinstance(step, InitLoopStep):
                if step.spec.loop_id in inits:
                    self._note(i, f"duplicate InitLoopStep for loop "
                                  f"{step.spec.loop_id}")
                inits[step.spec.loop_id] = i
            elif isinstance(step, IncrementLoopStep):
                increments[step.loop_id] = i
            elif isinstance(step, LoopStep):
                if step.loop_id in loop_steps:
                    self._note(i, f"duplicate LoopStep for loop "
                                  f"{step.loop_id}")
                loop_steps[step.loop_id] = i
            spec = getattr(step, "spec", None)
            loop_id = getattr(spec, "loop_id", None)
            if loop_id is None:
                loop_id = getattr(step, "loop_id", None)
            if loop_id is not None:
                self.checks += 1
                if loop_id not in self.program.loops:
                    self._note(i, f"references unknown loop {loop_id}")
        for loop_id, i in loop_steps.items():
            self.checks += 1
            if loop_id not in self.program.loops:
                self._note(i, f"loop {loop_id} has no LoopSpec")
                continue
            spec = self.program.loops[loop_id]
            step = self.steps[i]
            if not (0 <= step.jump_to < i):
                self._note(i, f"loop {loop_id} jump_to {step.jump_to + 1} "
                              "is not a backward jump")
                continue
            self.checks += 1
            init = inits.get(loop_id)
            if init is None or init >= step.jump_to:
                self._note(i, f"loop {loop_id} body starts at step "
                              f"{step.jump_to + 1} without a preceding "
                              "InitLoopStep")
            self.checks += 1
            if spec.termination is not None:
                inc = increments.get(loop_id)
                if inc is None or not (step.jump_to <= inc < i):
                    self._note(i, f"counted loop {loop_id} has no "
                                  "IncrementLoopStep inside its body")
        for loop_id in self.program.loops:
            self.checks += 1
            if loop_id not in loop_steps:
                self.violations.append(
                    f"LoopSpec {loop_id} has no LoopStep in the program")
            if loop_id not in inits:
                self.violations.append(
                    f"LoopSpec {loop_id} has no InitLoopStep")
        self._check_nesting(loop_steps)

    def _check_nesting(self, loop_steps: dict[int, int]) -> None:
        ranges = []
        for loop_id, i in loop_steps.items():
            step = self.steps[i]
            if 0 <= step.jump_to < i:
                ranges.append((step.jump_to, i, loop_id))
        for a_start, a_end, a_id in ranges:
            for b_start, b_end, b_id in ranges:
                if a_id >= b_id:
                    continue
                self.checks += 1
                disjoint = a_end < b_start or b_end < a_start
                nested = (a_start <= b_start and b_end <= a_end) or \
                         (b_start <= a_start and a_end <= b_end)
                if not (disjoint or nested):
                    self.violations.append(
                        f"loops {a_id} and {b_id} overlap without "
                        f"nesting: [{a_start + 1}, {a_end + 1}] vs "
                        f"[{b_start + 1}, {b_end + 1}]")

    # -- reachability ------------------------------------------------------

    def check_reachability(self) -> set[int]:
        seen: set[int] = set()
        stack = [0]
        while stack:
            i = stack.pop()
            if i in seen:
                continue
            seen.add(i)
            stack.extend(self._successors(i))
        for i, step in enumerate(self.steps):
            self.checks += 1
            if i not in seen:
                self._note(i, "unreachable from the program entry")
        returns = [i for i, s in enumerate(self.steps)
                   if isinstance(s, ReturnStep)]
        for i in returns:
            self.checks += 1
            if i not in seen:
                self._note(i, "ReturnStep is unreachable")
        return seen

    # -- dataflow ----------------------------------------------------------

    def _flows(self) -> list[_Flow]:
        flows = []
        for step in self.steps:
            flow = _step_flow(step)
            if isinstance(step, LoopStep):
                spec = self.program.loops.get(step.loop_id)
                reads = set()
                if spec is not None:
                    # The continue decision reads the working table
                    # (fixpoint) or the CTE table (data conditions).
                    if spec.until_empty is not None:
                        reads.add(spec.until_empty.lower())
                    elif spec.termination is not None and \
                            spec.termination.kind in (
                                ast.TerminationKind.DATA_ANY,
                                ast.TerminationKind.DATA_ALL):
                        reads.add(spec.cte_result.lower())
                flow = _Flow(frozenset(reads), flow.defines, flow.kills)
            flows.append(flow)
        return flows

    def check_dataflow(self) -> None:
        n = len(self.steps)
        flows = self._flows()
        universe = frozenset().union(
            *(f.reads | f.defines | f.kills for f in flows)) \
            if flows else frozenset()
        preds: list[list[int]] = [[] for _ in range(n)]
        for i in range(n):
            for s in self._successors(i):
                preds[s].append(i)

        # Must-defined: IN[s] = ∩ OUT[pred]; OUT[s] = (IN − kills) ∪ defs.
        defined_in = [universe] * n
        defined_in[0] = frozenset()

        def out_of(i: int) -> frozenset[str]:
            return (defined_in[i] - flows[i].kills) | flows[i].defines

        changed = True
        while changed:
            changed = False
            for i in range(n):
                if i == 0:
                    continue
                if preds[i]:
                    new = frozenset.intersection(
                        *(out_of(p) for p in preds[i]))
                else:
                    new = universe  # unreachable; reachability flags it
                if new != defined_in[i]:
                    defined_in[i] = new
                    changed = True

        for i in range(n):
            for name in sorted(flows[i].reads):
                self.checks += 1
                if name not in defined_in[i]:
                    self._note(i, f"reads {name!r} before any "
                                  "materialize/copy/snapshot defines it "
                                  "on every path")

        # Backward liveness: LIVE_OUT[s] = ∪ LIVE_IN[succ];
        # LIVE_IN[s] = reads ∪ (LIVE_OUT − defines).
        live_in = [frozenset()] * n
        changed = True
        while changed:
            changed = False
            for i in range(n - 1, -1, -1):
                live_out = frozenset().union(
                    *(live_in[s] for s in self._successors(i))) \
                    if self._successors(i) else frozenset()
                new = flows[i].reads | (live_out - flows[i].defines)
                if new != live_in[i]:
                    live_in[i] = new
                    changed = True

        def live_out_of(i: int) -> frozenset[str]:
            succ = self._successors(i)
            return frozenset().union(*(live_in[s] for s in succ)) \
                if succ else frozenset()

        for i, step in enumerate(self.steps):
            if isinstance(step, DropStep):
                self.checks += 1
                live = sorted(flows[i].kills & live_out_of(i))
                if live:
                    self._note(i, f"drops live result(s): "
                                  f"{', '.join(live)}")
            elif isinstance(step, SnapshotStep):
                self.checks += 1
                if step.target.lower() not in live_out_of(i):
                    self._note(i, f"snapshot {step.target!r} is never "
                                  "consumed by a CountUpdatesStep/"
                                  "DeltaCaptureStep or plan")

    # -- strategy legality -------------------------------------------------

    def check_strategies(self) -> None:
        for loop_id, spec in self.program.loops.items():
            loop_idx = next(
                (i for i, s in enumerate(self.steps)
                 if isinstance(s, LoopStep) and s.loop_id == loop_id),
                None)
            if loop_idx is None:
                continue
            start = self.steps[loop_idx].jump_to
            if not (0 <= start < loop_idx):
                continue
            body = range(start, loop_idx)
            if spec.until_empty is not None:
                self._check_fixpoint_body(spec, body)
            elif spec.termination is not None:
                self._check_iterative_body(spec, body, loop_idx)
            if spec.delta is not None:
                self._check_delta_quartet(spec, body, loop_idx)

    def _check_fixpoint_body(self, spec, body: range) -> None:
        self.checks += 1
        merges = [self.steps[i] for i in body
                  if isinstance(self.steps[i], RecursiveMergeStep)]
        if not any(m.result.lower() == spec.cte_result.lower()
                   and m.working.lower() == spec.until_empty.lower()
                   for m in merges):
            self.violations.append(
                f"fixpoint loop {spec.loop_id} body lacks a "
                f"RecursiveMergeStep feeding {spec.until_empty!r}")

    def _check_iterative_body(self, spec, body: range,
                              loop_idx: int) -> None:
        target = spec.cte_result.lower()
        movements = [(i, self.steps[i]) for i in body
                     if isinstance(self.steps[i], (RenameStep, CopyStep))
                     and self.steps[i].target.lower() == target]
        self.checks += 1
        if len(movements) != 1:
            self.violations.append(
                f"loop {spec.loop_id} body moves {target!r} "
                f"{len(movements)} times, expected exactly once")
            return
        index, movement = movements[0]
        self.checks += 1
        wanted = RenameStep if spec.movement == "rename" else CopyStep
        if not isinstance(movement, wanted):
            self._note(index, f"loop {spec.loop_id} declares movement "
                              f"{spec.movement!r} but the body uses "
                              f"{type(movement).__name__}")
        if spec.has_where:
            self._check_merge_before_move(spec, body, index, movement)

    def _check_merge_before_move(self, spec, body: range, move_idx: int,
                                 movement) -> None:
        """A WHERE body updates a subset of rows: the moved table must be
        the *merge* of the duplicate-checked working table into the main
        table, never the working table itself (rename-in-place is only
        legal for full-dataset updates — §VI-A)."""
        delta_working = (spec.delta.delta_working.lower()
                         if spec.delta is not None else None)
        checked = {self.steps[i].result_name.lower() for i in body
                   if isinstance(self.steps[i], DuplicateCheckStep)
                   and self.steps[i].result_name.lower() != delta_working}
        self.checks += 1
        if not checked:
            self._note(move_idx, f"loop {spec.loop_id} has a WHERE body "
                                 "but no DuplicateCheckStep on the "
                                 "working table")
            return
        source = movement.source.lower()
        producer = next(
            (self.steps[i] for i in body
             if isinstance(self.steps[i], MaterializeStep)
             and self.steps[i].result_name.lower() == source),
            None)
        self.checks += 1
        if producer is None:
            self._note(move_idx, f"moves {source!r} onto the CTE table "
                                 "but nothing in the body materializes it")
            return
        self.checks += 1
        if not (_plan_temp_reads(producer.plan) & checked):
            self._note(move_idx, f"WHERE body moves {source!r} onto "
                                 f"{spec.cte_result!r} without merging "
                                 "the duplicate-checked working table "
                                 "(rename-in-place needs a no-WHERE body)")

    def _check_delta_quartet(self, spec, body: range,
                             loop_idx: int) -> None:
        delta = spec.delta
        fused = [i for i in body
                 if isinstance(self.steps[i], DeltaFusedStep)
                 and self.steps[i].spec.loop_id == delta.loop_id]
        if fused:
            self._check_delta_fused(delta, body, loop_idx, fused)
            return
        found: dict[type, int] = {}
        for i in body:
            step = self.steps[i]
            if isinstance(step, (DeltaGateStep, DeltaPartitionStep,
                                 DeltaApplyStep, DeltaCaptureStep)) \
                    and step.spec.loop_id == delta.loop_id:
                if type(step) in found:
                    self._note(i, f"duplicate {type(step).__name__} for "
                                  f"loop {delta.loop_id}")
                found[type(step)] = i
        self.checks += 1
        missing = [cls.__name__ for cls in
                   (DeltaGateStep, DeltaPartitionStep, DeltaApplyStep,
                    DeltaCaptureStep) if cls not in found]
        if missing:
            self.violations.append(
                f"delta loop {delta.loop_id} is missing "
                f"{', '.join(missing)} (gate/partition/apply/capture "
                "must all be present)")
            return
        gate_i = found[DeltaGateStep]
        part_i = found[DeltaPartitionStep]
        apply_i = found[DeltaApplyStep]
        capture_i = found[DeltaCaptureStep]
        self.checks += 1
        if not (gate_i < part_i < apply_i < capture_i):
            self.violations.append(
                f"delta loop {delta.loop_id} quartet out of order: "
                f"gate={gate_i + 1}, partition={part_i + 1}, "
                f"apply={apply_i + 1}, capture={capture_i + 1}")
            return
        self.checks += 1
        if part_i != gate_i + 1:
            self._note(gate_i, "gate must fall through into the "
                               "partition step")
        self.checks += 1
        recompute = next(
            (i for i in range(part_i + 1, apply_i)
             if isinstance(self.steps[i], MaterializeStep)
             and self.steps[i].result_name.lower()
             == delta.delta_working.lower()),
            None)
        if recompute is None:
            self._note(apply_i, f"no materialization of "
                                f"{delta.delta_working!r} between "
                                "partition and apply")
        else:
            self.checks += 1
            names = [c.lower() for c in self.steps[recompute].column_names]
            if names != [c.lower() for c in delta.columns]:
                self._note(recompute, "delta-working columns diverge "
                                      "from the DeltaSpec's column list")
            if delta.merge_by_key:
                self.checks += 1
                if not any(isinstance(self.steps[i], DuplicateCheckStep)
                           and self.steps[i].result_name.lower()
                           == delta.delta_working.lower()
                           for i in range(recompute + 1, apply_i)):
                    self._note(apply_i, "merge-by-key delta lacks a "
                                        "DuplicateCheckStep on the "
                                        "recomputed partition")
        gate = self.steps[gate_i]
        apply_step = self.steps[apply_i]
        self.checks += 1
        if gate.jump_full != apply_step.jump_full:
            self._note(gate_i, f"gate jump_full ({gate.jump_full + 1}) "
                               "and apply jump_full "
                               f"({apply_step.jump_full + 1}) diverge")
        self.checks += 1
        if not (apply_i < gate.jump_full <= capture_i):
            self._note(gate_i, f"jump_full ({gate.jump_full + 1}) must "
                               "enter the full body between apply and "
                               "capture")
        self.checks += 1
        if gate.jump_done != apply_step.jump_to:
            self._note(gate_i, f"gate jump_done ({gate.jump_done + 1}) "
                               "and apply jump_to "
                               f"({apply_step.jump_to + 1}) diverge")
        self.checks += 1
        if not (capture_i < gate.jump_done <= loop_idx):
            self._note(gate_i, f"jump_done ({gate.jump_done + 1}) must "
                               "skip past the capture step")

    def _check_delta_fused(self, delta, body: range, loop_idx: int,
                           fused: list[int]) -> None:
        """Fusion-on shape: exactly one DeltaFusedStep paired with the
        capture step, none of the quartet steps, and the same three jump
        targets the gate/apply pair would carry."""
        self.checks += 1
        if len(fused) != 1:
            for i in fused[1:]:
                self._note(i, f"duplicate DeltaFusedStep for loop "
                              f"{delta.loop_id}")
            return
        fused_i = fused[0]
        step = self.steps[fused_i]
        self.checks += 1
        leftovers = [i for i in body
                     if isinstance(self.steps[i],
                                   (DeltaGateStep, DeltaPartitionStep,
                                    DeltaApplyStep))
                     and self.steps[i].spec.loop_id == delta.loop_id]
        for i in leftovers:
            self._note(i, f"{type(self.steps[i]).__name__} coexists with "
                          f"the fused delta pass of loop {delta.loop_id}")
        captures = [i for i in body
                    if isinstance(self.steps[i], DeltaCaptureStep)
                    and self.steps[i].spec.loop_id == delta.loop_id]
        self.checks += 1
        if len(captures) != 1:
            self.violations.append(
                f"fused delta loop {delta.loop_id} has {len(captures)} "
                "DeltaCaptureSteps, expected exactly 1")
            return
        capture_i = captures[0]
        self.checks += 1
        if not fused_i < capture_i:
            self._note(fused_i, "fused delta pass must precede the "
                                "capture step")
            return
        self.checks += 1
        names = [c.lower() for c in step.column_names]
        if names != [c.lower() for c in delta.columns]:
            self._note(fused_i, "fused delta columns diverge from the "
                                "DeltaSpec's column list")
        self.checks += 1
        if step.dup_check != delta.merge_by_key:
            self._note(fused_i, "fused delta pass must duplicate-check "
                                "the recomputed partition exactly for "
                                "merge-by-key bodies")
        self.checks += 1
        if not (fused_i < step.jump_full <= capture_i):
            self._note(fused_i, f"jump_full ({step.jump_full + 1}) must "
                                "enter the full body before the capture "
                                "step")
        self.checks += 1
        if step.jump_to != step.jump_done:
            self._note(fused_i, f"jump_to ({step.jump_to + 1}) and "
                                f"jump_done ({step.jump_done + 1}) "
                                "diverge; both must target the loop "
                                "increment")
        self.checks += 1
        if not (capture_i < step.jump_to <= loop_idx):
            self._note(fused_i, f"jump_to ({step.jump_to + 1}) must skip "
                                "past the capture step")

    # -- embedded plans ----------------------------------------------------

    def check_embedded_plans(self) -> None:
        for i, step in enumerate(self.steps):
            if isinstance(step, (MaterializeStep, ReturnStep,
                                 DeltaFusedStep)):
                checker = PlanChecker(self.catalog)
                for violation in checker.check(step.plan):
                    self._note(i, violation)
                self.checks += checker.checks

    # -- entry point -------------------------------------------------------

    def check(self) -> list[str]:
        self.check_structure()
        if self.violations:
            # Structural breakage (dangling jumps, missing loops) makes
            # the CFG analyses meaningless; report what we have.
            return self.violations
        self.check_reachability()
        self.check_dataflow()
        self.check_strategies()
        self.check_embedded_plans()
        return self.violations


def check_program(program: Program, catalog=None) -> list[str]:
    """All violations in ``program`` (empty when well-formed)."""
    return ProgramChecker(program, catalog).check()


def verify_program(program: Program, pass_name: str,
                   catalog=None) -> VerificationReport:
    """Raise :class:`VerificationError` if ``program`` is malformed."""
    checker = ProgramChecker(program, catalog)
    violations = checker.check()
    if violations:
        raise VerificationError(pass_name, violations)
    return VerificationReport(pass_name, len(program.steps),
                              checker.checks)
