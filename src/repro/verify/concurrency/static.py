"""Static lock-discipline pass over the source tree.

AST-based, like :mod:`repro.verify.lint`, but driven entirely by the
declarative guard map in :mod:`.guards`.  Four rule families:

* **unguarded-mutation** — a mutation of a guarded attribute (plain /
  augmented / subscript assignment, ``del``, or a mutating container
  call such as ``.append``/``.pop``/``.clear``) that is not lexically
  inside a ``with <lock>`` block for the declared lock.  Checked in the
  guard's defining module for every declared attr, and in any module
  importing the guarded class for the underscore-private attrs.
* **unguarded-call** — a call into the mutation API of an externally
  synchronized object (``catalog.create/drop/put/register``,
  ``statistics.analyze/invalidate``) outside ``with <...>.write_lock``.
* **lock-hierarchy** — a ``with`` that acquires a lock of *higher* rank
  than one already held lexically (the declared order is
  ``write_lock > table lock > cache locks``; re-entering the same lock
  is fine, it is re-entrant).
* **blocking-under-lock** — ``sleep``, pipe ``recv``/``recv_bytes``,
  queue ``get``, future ``result`` or thread ``join`` calls made while
  any guarded lock is lexically held: a blocked lock holder stalls
  every session behind it.
* **lock-api** — direct ``.acquire()``/``.release()`` on a lock:
  guarded state discipline is only auditable when critical sections are
  lexical ``with`` blocks.

Lexical scoping is a deliberate approximation: a function *called* from
inside a ``with`` block does not inherit the lock in this analysis.
Contexts where that matters are declared in the guard map
(``ASSUMED_HELD_MODULES`` / ``ASSUMED_HELD_FUNCTIONS``) as part of the
contract the checker enforces — an undeclared one shows up as a
finding, which is the point: every lock-held entry path is written
down, machine-checked, exactly one hop of reasoning.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from .guards import (
    ASSUMED_HELD_FUNCTIONS,
    ASSUMED_HELD_MODULES,
    CALL_GUARDS,
    DEFAULT_LOCK_LEVEL,
    GLOBAL_LOCK_LEVELS,
    GUARDS,
    GuardSpec,
    LEVEL_NAMES,
    module_lock_levels,
)

_PACKAGE_ROOT = Path(__file__).resolve().parents[2]  # src/repro

# Container-mutation method names: calling one of these on a guarded
# attribute mutates the guarded structure.
_MUTATORS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend",
    "insert", "move_to_end", "pop", "popleft", "popitem", "remove",
    "setdefault", "update",
})

# Blocking-call shapes (attribute name -> receiver-name hints; empty
# hint set means any receiver).
_BLOCKING_ATTRS: dict[str, tuple[str, ...]] = {
    "sleep": (),
    "recv": (),
    "recv_bytes": (),
    "get": ("queue", "ready", "inbox", "jobs"),
    "result": ("future", "fut"),
    "join": ("thread", "worker", "proc", "pool"),
}

# The shim/checker implementation itself talks about locks by name.
_EXEMPT_PREFIXES = ("verify/concurrency/",)


@dataclass
class ConcurrencyIssue:
    """One finding: file/line plus the rule that fired."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class _Held:
    """One lexically held lock: its attribute name and hierarchy rank."""

    attr: str
    level: Optional[int]


def _attr_chain(node: ast.AST) -> list[str]:
    """``self._engine.write_lock`` -> ["self", "_engine", "write_lock"];
    empty when the expression is not a plain name/attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _is_lockish(name: str) -> bool:
    return name.endswith("lock")


class _ModuleChecker(ast.NodeVisitor):
    """Walks one module with a lexical held-locks stack."""

    def __init__(self, checker: "ConcurrencyChecker", path: Path,
                 rel: str, tree: ast.Module):
        self.checker = checker
        self.path = path
        self.rel = rel
        self.tree = tree
        self.lock_levels = module_lock_levels(rel)
        # Specs whose every attr is checked here (defining module) and
        # specs whose private attrs are checked here (imported class).
        self.local_specs = [s for s in GUARDS if s.module == rel]
        imported = self._imported_names()
        self.imported_specs = [
            s for s in GUARDS
            if s.module != rel and s.cls in imported and s.shared_attrs]
        self.held: list[_Held] = list(
            self._assumed(ASSUMED_HELD_MODULES.get(rel, ())))
        self.in_init = False

    # -- context helpers ---------------------------------------------------

    def _assumed(self, attrs) -> list[_Held]:
        return [_Held(a, self._lock_level(a)) for a in attrs]

    def _imported_names(self) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom):
                names.update(alias.asname or alias.name
                             for alias in node.names)
        return names

    def _lock_level(self, attr: str) -> Optional[int]:
        if attr in self.lock_levels:
            return self.lock_levels[attr]
        if attr in GLOBAL_LOCK_LEVELS:
            return GLOBAL_LOCK_LEVELS[attr]
        return DEFAULT_LOCK_LEVEL if attr.startswith("_") else None

    def _note(self, node: ast.AST, rule: str, message: str) -> None:
        self.checker.note(self.path, node.lineno, rule, message)

    def _holds(self, lock_attr: str) -> bool:
        return any(h.attr == lock_attr for h in self.held)

    # -- scope handling ----------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def _enter_function(self, node) -> None:
        # A nested def is a fresh execution context: it does not inherit
        # lexically held locks (it may run long after the block exits).
        saved_held, saved_init = self.held, self.in_init
        self.held = self._assumed(
            ASSUMED_HELD_MODULES.get(self.rel, ())
            + ASSUMED_HELD_FUNCTIONS.get((self.rel, node.name), ()))
        # __init__ builds state no other thread can reach yet.
        self.in_init = node.name == "__init__"
        self.generic_visit(node)
        self.held, self.in_init = saved_held, saved_init

    def visit_With(self, node: ast.With) -> None:
        self._enter_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._enter_with(node)

    def _enter_with(self, node) -> None:
        acquired: list[_Held] = []
        for item in node.items:
            chain = _attr_chain(item.context_expr)
            if not chain or not _is_lockish(chain[-1]):
                continue
            attr = chain[-1]
            if self._holds(attr):
                continue  # re-entrant re-acquisition of the same lock
            level = self._lock_level(attr)
            if level is not None:
                for outer in self.held:
                    if outer.level is not None and outer.level < level:
                        self._note(
                            node, "lock-hierarchy",
                            f"acquires {attr} "
                            f"({LEVEL_NAMES[level]} level) while "
                            f"holding {outer.attr} "
                            f"({LEVEL_NAMES[outer.level]} level); the "
                            "declared order is write_lock > table lock "
                            "> cache locks")
            acquired.append(_Held(attr, level))
        self.held.extend(acquired)
        self.generic_visit(node)
        if acquired:
            del self.held[-len(acquired):]

    # -- mutation rules ----------------------------------------------------

    def _match_specs(self, attr_node: ast.Attribute) -> list[GuardSpec]:
        """Guard specs whose contract covers a mutation of this attr."""
        matches = []
        for spec in self.local_specs:
            if attr_node.attr not in spec.attrs:
                continue
            if spec.target_attr:
                owner = attr_node.value
                if not (isinstance(owner, ast.Attribute)
                        and owner.attr == spec.target_attr):
                    continue
            matches.append(spec)
        if not matches:
            for spec in self.imported_specs:
                if attr_node.attr in spec.shared_attrs:
                    matches.append(spec)
        return matches

    def _check_mutation(self, node: ast.AST, target: ast.AST) -> None:
        if isinstance(target, ast.Subscript):
            target = target.value
        if not isinstance(target, ast.Attribute):
            return
        if self.in_init:
            return
        for spec in self._match_specs(target):
            if not self._holds(spec.lock_attr):
                self._note(
                    node, "unguarded-mutation",
                    f"mutates {spec.name}.{target.attr} outside a "
                    f"`with <...>.{spec.lock_attr}` block (guard map: "
                    f"{spec.lock_attr} protects "
                    f"{'/'.join(spec.attrs)})")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_mutation(node, target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_mutation(node, node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_mutation(node, node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_mutation(node, target)
        self.generic_visit(node)

    # -- call rules --------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _MUTATORS and isinstance(func.value,
                                                     ast.Attribute):
                self._check_mutation(node, func.value)
            self._check_call_guards(node, func)
            self._check_lock_api(node, func)
            if self.held and not self.in_init:
                self._check_blocking(node, func)
        elif isinstance(func, ast.Name) and func.id == "sleep" \
                and self.held and not self.in_init:
            self._note(node, "blocking-under-lock",
                       "sleep() while holding "
                       f"{self.held[-1].attr}: a blocked lock holder "
                       "stalls every waiter")
        self.generic_visit(node)

    def _check_call_guards(self, node: ast.Call,
                           func: ast.Attribute) -> None:
        chain = _attr_chain(func)
        if len(chain) < 3:
            return  # need at least <recv>.<receiver>.<method>()
        receiver, method = chain[-2], chain[-1]
        for guard in CALL_GUARDS:
            if method not in guard.methods or receiver != guard.receiver:
                continue
            if any(self.rel == exempt or self.rel.endswith(exempt)
                   for exempt in guard.exempt_modules):
                continue
            if not self._holds(guard.lock_attr):
                self._note(
                    node, "unguarded-call",
                    f"{receiver}.{method}() mutates engine-shared "
                    f"{guard.name} state outside a `with "
                    f"<...>.{guard.lock_attr}` block")

    def _check_lock_api(self, node: ast.Call,
                        func: ast.Attribute) -> None:
        if func.attr not in ("acquire", "release"):
            return
        chain = _attr_chain(func.value)
        if chain and _is_lockish(chain[-1]):
            self._note(
                node, "lock-api",
                f"direct {chain[-1]}.{func.attr}(): locks are acquired "
                "only through `with` blocks so critical sections stay "
                "lexically auditable")

    def _check_blocking(self, node: ast.Call,
                        func: ast.Attribute) -> None:
        hints = _BLOCKING_ATTRS.get(func.attr)
        if hints is None:
            return
        if hints:
            chain = _attr_chain(func.value)
            receiver = chain[-1].lower() if chain else ""
            if not any(hint in receiver for hint in hints):
                return
        self._note(
            node, "blocking-under-lock",
            f"blocking call .{func.attr}() while holding "
            f"{self.held[-1].attr}: a blocked lock holder stalls "
            "every waiter")

    def run(self) -> None:
        self.visit(self.tree)


class ConcurrencyChecker:
    """Runs the lock-discipline pass over one source tree."""

    def __init__(self, root: Optional[Path] = None):
        self.root = root or _PACKAGE_ROOT
        self.issues: list[ConcurrencyIssue] = []
        self._files: list[tuple[Path, str, ast.Module]] = []
        for path in sorted(self.root.rglob("*.py")):
            rel = self._rel(path)
            if any(rel.startswith(prefix) for prefix in _EXEMPT_PREFIXES):
                continue
            try:
                tree = ast.parse(path.read_text(), filename=str(path))
            except SyntaxError:
                self.note(path, 1, "parse", "file does not parse")
                continue
            self._files.append((path, rel, tree))

    def _rel(self, path: Path) -> str:
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def note(self, path: Path, line: int, rule: str,
             message: str) -> None:
        self.issues.append(
            ConcurrencyIssue(self._rel(path), line, rule, message))

    def run(self) -> list[ConcurrencyIssue]:
        for path, rel, tree in self._files:
            _ModuleChecker(self, path, rel, tree).run()
        self.issues.sort(key=lambda i: (i.path, i.line, i.rule))
        return self.issues

    @property
    def file_count(self) -> int:
        return len(self._files)


def run_static(root: Optional[Path] = None) -> list[ConcurrencyIssue]:
    """All lock-discipline findings over ``root`` (default: the
    installed package)."""
    return ConcurrencyChecker(root).run()
