"""Concurrency safety net: lock discipline, statically and dynamically.

Two prongs over one declarative guard map (:mod:`.guards`):

* :mod:`.static` — AST lock-discipline pass (``repro-racecheck``):
  guarded-attribute mutations outside their ``with <lock>`` block,
  unguarded catalog/statistics mutation calls, lock-hierarchy
  inversions, blocking calls under a lock, bare ``acquire``/``release``.
* :mod:`.lockset` — Eraser-style dynamic lockset detector, off by
  default, enabled with ``REPRO_RACECHECK=1`` under pytest: guarded
  classes are shimmed so every access records ``(thread, lockset)``,
  and cross-thread accesses with an empty lockset intersection are
  reported as structured :class:`~.lockset.RaceWarning`\\ s.
"""

from .guards import CALL_GUARDS, GUARDS, CallGuard, GuardSpec
from .lockset import (
    RaceWarning,
    disable_racecheck,
    enable_racecheck,
    load_report,
    racecheck_enabled,
    racecheck_report,
    reset_races,
    write_report,
)
from .static import ConcurrencyChecker, ConcurrencyIssue, run_static

__all__ = [
    "CALL_GUARDS",
    "CallGuard",
    "ConcurrencyChecker",
    "ConcurrencyIssue",
    "GUARDS",
    "GuardSpec",
    "RaceWarning",
    "disable_racecheck",
    "enable_racecheck",
    "load_report",
    "racecheck_enabled",
    "racecheck_report",
    "reset_races",
    "run_static",
    "write_report",
]
