"""Eraser-style dynamic lockset race detector.

Off by default.  When enabled (``REPRO_RACECHECK=1`` under pytest, or
:func:`enable_racecheck` directly), a thin shim is patched over the
guard map's classes:

* every lock in :data:`~.guards.LOCK_OWNERS` is replaced at
  construction time with a :class:`TrackedLock` that records
  acquisitions in a thread-local stack;
* every declared read/write method of a guarded class is wrapped so
  that each call records one *access* to that instance's guarded state:
  ``(thread id, lockset, stack fingerprint, kind)``.

The recorded lockset is the union of locks held at method entry and
locks acquired during the call — internally synchronized classes take
their own lock inside the method body, and what the lockset algorithm
needs is the set of locks that *could* be protecting the access.

Per guarded instance, the classic Eraser state machine refines a
candidate lockset:

* *virgin* -> *exclusive* on first access (one thread owns the state
  during initialization; no refinement, no reports);
* a second thread moves the state to *shared* (reads) or
  *shared-modified* (any write); from then on every participating
  access intersects its lockset into the candidate set;
* when the candidate set becomes empty in *shared-modified*, the
  accesses are not consistently protected by any lock — a candidate
  race, reported once per location as a structured
  :class:`RaceWarning` carrying both stack fingerprints.

Specs with ``mode="writes"`` only feed write accesses into the machine:
the engine's snapshot protocol deliberately lets readers run lock-free,
so only writer/writer discipline is checkable there.

Everything is process-local (worker processes forked by the MPP pool
inherit the instrumentation but keep their own tables), and
:func:`disable_racecheck` restores every patched class, so the shim can
be switched on and off per test.
"""

from __future__ import annotations

import functools
import importlib
import json
import sys
import threading
from dataclasses import asdict, dataclass, field
from typing import Optional

from .guards import GUARDS, LOCK_OWNERS

REPORT_SCHEMA = "repro/racecheck-report@1"

_STATE_ATTR = "_racecheck_state"
_FRAME_LIMIT = 4


@dataclass
class RaceWarning:
    """One candidate race: two cross-thread accesses with no common lock."""

    location: str
    attrs: str
    first_thread: int
    first_kind: str
    first_stack: str
    first_lockset: tuple[str, ...]
    second_thread: int
    second_kind: str
    second_stack: str
    second_lockset: tuple[str, ...]

    def render(self) -> str:
        return (
            f"race on {self.location} ({self.attrs}):\n"
            f"  [{self.first_kind}] thread {self.first_thread} "
            f"locks={list(self.first_lockset) or '{}'}\n"
            f"      {self.first_stack}\n"
            f"  [{self.second_kind}] thread {self.second_thread} "
            f"locks={list(self.second_lockset) or '{}'}\n"
            f"      {self.second_stack}")


class _Tls(threading.local):
    def __init__(self):
        self.held: list[str] = []    # lock labels, acquisition order
        self.log: list[str] = []     # append-only acquisition log


_TLS = _Tls()
_TABLE_LOCK = threading.Lock()
_RACES: list[RaceWarning] = []
_ENABLED = False
_PATCHES: list[tuple[type, str, object]] = []


class TrackedLock:
    """Context-manager wrapper recording acquisitions per thread.

    Only the ``with`` protocol is offered on purpose: the static pass's
    ``lock-api`` rule bans bare ``acquire``/``release`` anyway, and a
    tracked lock that only supports ``with`` enforces it at run time
    too.
    """

    __slots__ = ("_inner", "label")

    def __init__(self, inner, label: str):
        self._inner = inner
        self.label = label

    def __enter__(self):
        self._inner.acquire()
        _TLS.held.append(self.label)
        _TLS.log.append(self.label)
        return self

    def __exit__(self, *exc):
        _TLS.held.remove(self.label)
        self._inner.release()
        return False


@dataclass
class _LocationState:
    """Eraser state for one guarded instance."""

    label: str
    attrs: str
    state: str = "virgin"            # virgin/exclusive/shared/shared-mod
    owner: int = 0
    lockset: Optional[frozenset] = None
    last_by_thread: dict = field(default_factory=dict)
    reported: bool = False


def _fingerprint() -> str:
    """A short caller-stack signature, skipping shim frames."""
    frames = []
    frame = sys._getframe(2)
    while frame is not None and len(frames) < _FRAME_LIMIT:
        filename = frame.f_code.co_filename
        if "verify/concurrency" not in filename.replace("\\", "/"):
            short = filename.rsplit("/", 1)[-1]
            frames.append(f"{short}:{frame.f_lineno} in "
                          f"{frame.f_code.co_name}")
        frame = frame.f_back
    return " > ".join(frames)


def _record(instance, spec, kind: str, lockset: frozenset) -> None:
    thread = threading.get_ident()
    stack = _fingerprint()
    with _TABLE_LOCK:
        state = instance.__dict__.get(_STATE_ATTR)
        if state is None:
            state = _LocationState(
                label=f"{spec.name}#{id(instance) & 0xffffff:x}",
                attrs="/".join(spec.attrs) or "shared state")
            instance.__dict__[_STATE_ATTR] = state
        state.last_by_thread[thread] = (kind, stack, lockset)
        if state.state == "virgin":
            state.state = "exclusive"
            state.owner = thread
            return
        if state.state == "exclusive" and thread == state.owner:
            return
        # Second thread reached the state: start/continue refinement.
        if state.state == "exclusive":
            state.state = "shared"
        if state.lockset is None:
            state.lockset = lockset
        else:
            state.lockset &= lockset
        if kind == "write":
            state.state = "shared-modified"
        if state.state == "shared-modified" and not state.lockset \
                and not state.reported:
            state.reported = True
            other = next(
                ((t, access) for t, access in state.last_by_thread.items()
                 if t != thread), (state.owner, (kind, stack, lockset)))
            other_thread, (o_kind, o_stack, o_locks) = other
            _RACES.append(RaceWarning(
                location=state.label, attrs=state.attrs,
                first_thread=other_thread, first_kind=o_kind,
                first_stack=o_stack,
                first_lockset=tuple(sorted(o_locks)),
                second_thread=thread, second_kind=kind,
                second_stack=stack,
                second_lockset=tuple(sorted(lockset))))


def _wrap_access(original, spec, kind: str):
    @functools.wraps(original)
    def wrapper(self, *args, **kwargs):
        entry_held = tuple(_TLS.held)
        mark = len(_TLS.log)
        try:
            return original(self, *args, **kwargs)
        finally:
            lockset = frozenset(entry_held).union(_TLS.log[mark:])
            _record(self, spec, kind, lockset)
    wrapper._racecheck_original = original
    return wrapper


def _wrap_init(original, lock_attrs: tuple[tuple[str, str], ...]):
    @functools.wraps(original)
    def wrapper(self, *args, **kwargs):
        original(self, *args, **kwargs)
        for attr, label in lock_attrs:
            inner = getattr(self, attr, None)
            if inner is not None and not isinstance(inner, TrackedLock):
                setattr(self, attr, TrackedLock(
                    inner, f"{label}#{id(self) & 0xffffff:x}"))
    wrapper._racecheck_original = original
    return wrapper


def _patch(cls: type, attr: str, replacement) -> None:
    _PATCHES.append((cls, attr, cls.__dict__[attr]))
    setattr(cls, attr, replacement)


def enable_racecheck() -> None:
    """Install the instrumentation shim (idempotent)."""
    global _ENABLED
    if _ENABLED:
        return
    owners: dict[type, list[tuple[str, str]]] = {}
    for module, cls_name, lock_attr, _level in LOCK_OWNERS:
        cls = getattr(importlib.import_module(module), cls_name)
        owners.setdefault(cls, []).append(
            (lock_attr, f"{cls_name}.{lock_attr}"))
    for cls, lock_attrs in owners.items():
        _patch(cls, "__init__",
               _wrap_init(cls.__dict__["__init__"], tuple(lock_attrs)))
    for spec in GUARDS:
        methods = [(name, "write") for name in spec.write_methods]
        if spec.mode == "all":
            methods += [(name, "read") for name in spec.read_methods]
        if not methods:
            continue
        cls = getattr(importlib.import_module(spec.import_path),
                      spec.cls)
        for name, kind in methods:
            _patch(cls, name, _wrap_access(cls.__dict__[name], spec,
                                           kind))
    _ENABLED = True


def disable_racecheck() -> None:
    """Remove the shim and restore every patched class."""
    global _ENABLED
    while _PATCHES:
        cls, attr, original = _PATCHES.pop()
        setattr(cls, attr, original)
    _ENABLED = False


def racecheck_enabled() -> bool:
    return _ENABLED


def racecheck_report() -> list[RaceWarning]:
    """The candidate races recorded so far (process-local)."""
    with _TABLE_LOCK:
        return list(_RACES)


def reset_races() -> None:
    with _TABLE_LOCK:
        _RACES.clear()


def report_to_dict() -> dict:
    """JSON-shaped dynamic report (consumed by ``repro-racecheck
    --replay``)."""
    with _TABLE_LOCK:
        return {
            "schema": REPORT_SCHEMA,
            "enabled": _ENABLED,
            "races": [asdict(race) for race in _RACES],
        }


def write_report(path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report_to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> list[RaceWarning]:
    """Re-hydrate a recorded dynamic report."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != REPORT_SCHEMA:
        raise ValueError(
            f"not a racecheck report (schema {payload.get('schema')!r},"
            f" expected {REPORT_SCHEMA!r})")
    return [RaceWarning(**{**race,
                           "first_lockset": tuple(race["first_lockset"]),
                           "second_lockset":
                               tuple(race["second_lockset"])})
            for race in payload["races"]]
