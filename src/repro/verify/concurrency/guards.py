"""The declarative guard map: which lock protects which shared state.

This module is the single source of truth both prongs of the
concurrency safety net read:

* the **static lock-discipline pass** (:mod:`.static`) uses the specs to
  flag mutations of guarded attributes outside a ``with <lock>`` block,
  mutating calls into externally-synchronized objects (the catalog) made
  without the engine write lock, lock acquisitions that invert the
  declared hierarchy, and blocking calls made while a lock is held;
* the **dynamic lockset detector** (:mod:`.lockset`) uses the specs to
  decide which classes to instrument, which of their methods count as
  reads vs writes of the guarded state, and whether lock-free reads are
  part of the design (``mode="writes"``) or a bug (``mode="all"``).

The lock hierarchy (higher acquires first, never the inverse)::

    Engine.write_lock          (LEVEL_ENGINE, 3)   DML/DDL serialization
      > SegmentedTable._lock   (LEVEL_TABLE,  2)   segments / watermarks
        > cache-level locks    (LEVEL_CACHE,  1)   KernelCache._lock,
                                                   PlanCache._lock,
                                                   MetricsRegistry._lock,
                                                   DatabaseServer._lock /
                                                   ._trace_lock

Deliberately *not* in the map:

* ``ExecutionStats`` — flat integer counters incremented on the hot
  execution path.  They are instrumentation, tolerated as lossy under
  concurrency (a dropped increment skews a counter, never a result);
  guarding them would tax every operator dispatch.
* ``ResultRegistry`` — per-session state; the serving layer dispatches
  at most one statement per session at a time, so it is single-threaded
  by contract (the engine-layering lint rule keeps it off the Engine).
* ``WorkerPool`` pipes — single-owner by construction (each endpoint is
  used by exactly one process/thread pair).
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Hierarchy ranks: a lock may only be acquired while holding locks of
# *strictly higher* rank (or none).  Acquiring rank 3 under rank 1 is an
# inversion.
LEVEL_ENGINE = 3
LEVEL_TABLE = 2
LEVEL_CACHE = 1

LEVEL_NAMES = {
    LEVEL_ENGINE: "engine",
    LEVEL_TABLE: "table",
    LEVEL_CACHE: "cache",
}


@dataclass(frozen=True)
class GuardSpec:
    """One guarded-state contract: ``lock_attr`` protects ``attrs``.

    ``module`` locates the defining file (posix path relative to the
    package root) — the static pass checks every mutation of ``attrs``
    there, and underscore-private attrs additionally in any module that
    imports ``cls``.  ``target_attr`` handles guarded state that lives
    one hop away from the lock owner (``DatabaseServer._lock`` guards
    the counters on ``self.stats``).  ``held_methods`` are entered with
    the lock already held by contract (documented on the method).

    For the dynamic detector, ``write_methods``/``read_methods`` are the
    instrumentation points, and ``mode`` selects the lockset policy:
    ``"all"`` demands a common lock over every cross-thread access,
    ``"writes"`` only over writes — the engine's snapshot protocol makes
    lock-free *reads* of storage/catalog state sound by design, so only
    writer/writer discipline is checkable there.
    """

    name: str
    module: str
    cls: str
    lock_attr: str
    level: int
    attrs: tuple[str, ...] = ()
    target_attr: str = ""
    held_methods: tuple[str, ...] = ()
    mode: str = "all"
    write_methods: tuple[str, ...] = ()
    read_methods: tuple[str, ...] = ()

    @property
    def import_path(self) -> str:
        """``execution/kernel_cache.py`` -> ``repro.execution.kernel_cache``."""
        return "repro." + self.module[:-3].replace("/", ".")

    @property
    def shared_attrs(self) -> tuple[str, ...]:
        """Attrs distinctive enough to check in importing modules too."""
        return tuple(a for a in self.attrs if a.startswith("_"))


@dataclass(frozen=True)
class CallGuard:
    """Mutating-call discipline for externally synchronized objects.

    The catalog and statistics catalog carry no lock of their own — the
    engine write lock serializes every mutation.  Any call of one of
    ``methods`` on a receiver path ending in ``receiver`` must happen
    lexically under ``with <...>.<lock_attr>`` (or inside an
    assumed-held context); the implementing modules themselves are
    exempt.
    """

    name: str
    receiver: str
    methods: tuple[str, ...]
    lock_attr: str
    level: int
    exempt_modules: tuple[str, ...] = ()


GUARDS: tuple[GuardSpec, ...] = (
    GuardSpec(
        name="Catalog",
        module="storage/catalog.py",
        cls="Catalog",
        lock_attr="write_lock",
        level=LEVEL_ENGINE,
        # No attr-level checks: mutation happens through the documented
        # API (see CALL_GUARDS) and the implementation module is its own
        # exemption.  Dynamic mode "writes": snapshot-pinned reads are
        # lock-free by design.
        mode="writes",
        write_methods=("create", "drop", "put", "register"),
    ),
    GuardSpec(
        name="SegmentedTable",
        module="storage/segmented.py",
        cls="SegmentedTable",
        lock_attr="_lock",
        level=LEVEL_TABLE,
        attrs=("_segments", "_flat", "schema", "consolidations",
               "rows_consolidated"),
        held_methods=("_consolidate",),
        # Readers race ahead of the lock on purpose (the `_flat`
        # double-check in `columns`); writer/writer and
        # writer/consolidator discipline is what the lock exists for.
        mode="writes",
        write_methods=("append", "_consolidate"),
    ),
    GuardSpec(
        name="KernelCache",
        module="execution/kernel_cache.py",
        cls="KernelCache",
        lock_attr="_lock",
        level=LEVEL_CACHE,
        attrs=("_dictionaries", "_indexes", "_index_candidates"),
        # Even lookups mutate (LRU move_to_end), so every access needs
        # the lock — this is the exact shape of the PR 9 check-then-
        # delete race the bench storm caught.
        mode="all",
        write_methods=("dictionary", "join_index", "invalidate_columns",
                       "clear"),
        read_methods=("nbytes",),
    ),
    GuardSpec(
        name="PlanCache",
        module="plan/cache.py",
        cls="PlanCache",
        lock_attr="_lock",
        level=LEVEL_CACHE,
        attrs=("_programs", "_texts", "_shapes"),
        mode="all",
        write_methods=("get_normalized", "store", "clear"),
        read_methods=("get_text", "knows_text", "snapshot"),
    ),
    GuardSpec(
        name="MetricsRegistry",
        module="obs/metrics.py",
        cls="MetricsRegistry",
        lock_attr="_lock",
        level=LEVEL_CACHE,
        attrs=("_counters", "_gauges", "_histograms"),
        mode="all",
        write_methods=("counter", "gauge", "histogram", "ingest",
                       "reset"),
        read_methods=("snapshot",),
    ),
    GuardSpec(
        name="ServerStats",
        module="server/service.py",
        cls="DatabaseServer",
        lock_attr="_lock",
        level=LEVEL_CACHE,
        attrs=("submitted", "completed", "failed", "rejected",
               "peak_outstanding"),
        target_attr="stats",
        # Static-only: the counters are mutated inline, not through
        # methods, so there is no method boundary to instrument.
    ),
    GuardSpec(
        name="ServerClient",
        module="server/service.py",
        cls="ServerClient",
        lock_attr="_lock",
        level=LEVEL_CACHE,
        attrs=("_pending", "_in_flight", "_closed"),
    ),
)


CALL_GUARDS: tuple[CallGuard, ...] = (
    CallGuard(
        name="Catalog",
        receiver="catalog",
        methods=("create", "drop", "put", "register"),
        lock_attr="write_lock",
        level=LEVEL_ENGINE,
        exempt_modules=("storage/catalog.py", "storage/snapshot.py"),
    ),
    CallGuard(
        name="StatisticsCatalog",
        receiver="statistics",
        methods=("analyze", "invalidate"),
        lock_attr="write_lock",
        level=LEVEL_ENGINE,
        exempt_modules=("stats/statistics.py",),
    ),
)


# Contexts entered with a lock already held — part of the declared
# contract, not an escape hatch: each entry corresponds to a documented
# "caller holds the lock" invariant in the named code.
ASSUMED_HELD_MODULES: dict[str, tuple[str, ...]] = {
    # Every function in the DML module runs under the statement's
    # `with engine.write_lock` block in Session.execute.
    "engine/dml.py": ("write_lock",),
}

ASSUMED_HELD_FUNCTIONS: dict[tuple[str, str], tuple[str, ...]] = {
    # Helper bodies of Session's locked DDL/DML statement arms.
    ("engine/session.py", "_execute_create"): ("write_lock",),
    # "Idempotent under the lock" — called from `columns`/`snapshot`
    # with the table lock held.
    ("storage/segmented.py", "_consolidate"): ("_lock",),
}


# The lock-attribute vocabulary.  `write_lock` resolves globally; a
# bare `_lock`/`_trace_lock` resolves through the specs of its module
# (the same attribute name names locks at different levels in different
# classes), falling back to cache level for unknown modules.
GLOBAL_LOCK_LEVELS = {"write_lock": LEVEL_ENGINE}
DEFAULT_LOCK_LEVEL = LEVEL_CACHE

# Locks owned per class, used by the dynamic shim to install tracking
# wrappers at construction time: (import path, class, lock attr, level).
LOCK_OWNERS: tuple[tuple[str, str, str, int], ...] = (
    ("repro.engine.engine", "Engine", "write_lock", LEVEL_ENGINE),
    ("repro.storage.segmented", "SegmentedTable", "_lock", LEVEL_TABLE),
    ("repro.execution.kernel_cache", "KernelCache", "_lock", LEVEL_CACHE),
    ("repro.plan.cache", "PlanCache", "_lock", LEVEL_CACHE),
    ("repro.obs.metrics", "MetricsRegistry", "_lock", LEVEL_CACHE),
    ("repro.server.service", "DatabaseServer", "_lock", LEVEL_CACHE),
    ("repro.server.service", "DatabaseServer", "_trace_lock",
     LEVEL_CACHE),
)


def module_lock_levels(module: str) -> dict[str, int]:
    """Lock-attr -> level map for one module (posix rel path)."""
    levels = dict(GLOBAL_LOCK_LEVELS)
    for spec in GUARDS:
        if spec.module == module:
            levels.setdefault(spec.lock_attr, spec.level)
    return levels
