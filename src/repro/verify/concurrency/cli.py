"""``repro-racecheck``: the concurrency safety net's console entry.

Two modes:

* default — run the static lock-discipline pass over the source tree
  (the same rules the ``racecheck`` smoke guard and CI job run); exits
  non-zero on any finding.
* ``--replay report.json`` — re-render a dynamic lockset report
  recorded by a ``REPRO_RACECHECK=1`` pytest run (the conftest hook
  writes one at session end); exits non-zero when the report contains
  candidate races.  This is how CI fails the job from an uploaded
  artifact without re-running the stress tests.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from .lockset import load_report
from .static import ConcurrencyChecker


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-racecheck",
        description="Concurrency safety net: static lock-discipline "
                    "pass (default) or dynamic lockset report replay "
                    "(--replay).")
    parser.add_argument("--root", type=Path, default=None,
                        help="package root for the static pass "
                             "(default: the installed repro package)")
    parser.add_argument("--replay", type=Path, default=None,
                        metavar="REPORT",
                        help="render a recorded dynamic lockset report "
                             "instead of running the static pass")
    args = parser.parse_args(argv)

    if args.replay is not None:
        races = load_report(str(args.replay))
        for race in races:
            print(race.render())
        if races:
            print(f"repro-racecheck: {len(races)} candidate race(s) in "
                  f"{args.replay}")
            return 1
        print(f"repro-racecheck: report clean ({args.replay})")
        return 0

    checker = ConcurrencyChecker(args.root)
    issues = checker.run()
    for issue in issues:
        print(issue.render())
    if issues:
        print(f"repro-racecheck: {len(issues)} issue(s) in "
              f"{checker.file_count} files")
        return 1
    print(f"repro-racecheck: ok ({checker.file_count} files, "
          "5 rule families)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
