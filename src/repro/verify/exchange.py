"""Static verification of exchange plans (the distributed IR).

The local IR verifier (:mod:`repro.verify.plans` / ``programs``) gives
single-process programs machine-checked invariants; this module extends
the same guarantees to the distributed superstep programs described by
:class:`repro.mpp.plan.ExchangePlan` before any worker runs them:

* **Definition before motion** — every register a LocalOp reads or an
  ExchangeOp ships must be resident (declared in ``registers``) or
  written by an earlier step; an exchange of an undefined register would
  ship garbage or deadlock a receiver waiting on a phantom channel.
* **Partition-key consistency** — a LocalOp's ``requires`` co-location
  contracts must hold given the partition keys in effect at that step
  (declared keys for resident registers, the exchange key for shuffled
  ones).  Hash partitioning is deterministic per column value, so two
  registers co-locate exactly when both are currently hashed on the
  contracted columns.
* **Delta-shuffle legality** — ``ExchangeOp.delta`` is only sound under
  the ``semi_naive`` strategy: suppression replays the receiver's cached
  piece, which is only equivalent when state evolves by deltas and an
  unchanged outbound piece implies an unchanged contribution.

Violations are collected (not raised one at a time) and surface as the
same structured :class:`repro.errors.VerificationError` the local
verifier raises, naming the pass that produced the bad plan.
"""

from __future__ import annotations

from ..errors import VerificationError
from ..mpp.plan import (SEMI_NAIVE, STRATEGIES, ExchangeOp, ExchangePlan,
                        LocalOp)

__all__ = ["check_exchange_plan", "verify_exchange_plan"]


def check_exchange_plan(plan: ExchangePlan) -> list[str]:
    """Return every violated invariant of ``plan`` (empty == valid)."""
    violations: list[str] = []

    if plan.strategy not in STRATEGIES:
        violations.append(
            f"unknown plan strategy {plan.strategy!r} "
            f"(expected one of {', '.join(STRATEGIES)})")

    seen: set[str] = set()
    for reg in plan.registers:
        if reg.name in seen:
            violations.append(f"duplicate register {reg.name!r}")
        seen.add(reg.name)
        if reg.key is not None and reg.key not in reg.columns:
            violations.append(
                f"register {reg.name!r} hashed on {reg.key!r} "
                f"which is not one of its columns {list(reg.columns)}")

    # Walk the steps tracking which registers are defined and what
    # column each is currently partitioned on (None == unknown/local).
    defined: set[str] = {reg.name for reg in plan.registers}
    current_key: dict[str, str] = {
        reg.name: reg.key for reg in plan.registers if reg.key is not None}

    for position, step in enumerate(plan.steps):
        where = f"step {position}"
        if isinstance(step, LocalOp):
            where += f" ({step.operation!r})"
            for name in step.reads:
                if name not in defined:
                    violations.append(
                        f"{where} reads undefined register {name!r}")
            for contract in step.requires:
                _check_colocation(contract, current_key, defined,
                                  where, violations)
            defined.update(step.writes)
            # A local write invalidates any partition-key knowledge for
            # the produced register until an exchange re-establishes it,
            # unless it overwrites a resident register in place (which
            # keeps its distribution).
            for name in step.writes:
                if name not in step.reads and name in current_key \
                        and plan.register(name) is None:
                    del current_key[name]
        elif isinstance(step, ExchangeOp):
            where += f" (exchange {step.register!r})"
            if step.register not in defined:
                violations.append(
                    f"{where} ships undefined register {step.register!r}")
            columns = step.columns or (
                plan.register(step.register).columns
                if plan.register(step.register) else ())
            if columns and step.key not in columns:
                violations.append(
                    f"{where} routes on {step.key!r} which is not one of "
                    f"its columns {list(columns)}")
            if step.delta and plan.strategy != SEMI_NAIVE:
                violations.append(
                    f"{where} requests delta suppression under the "
                    f"{plan.strategy!r} strategy (requires semi_naive: "
                    f"replaying a cached piece is only equivalent when "
                    f"state evolves by deltas)")
            current_key[step.register] = step.key
        else:  # pragma: no cover - frozen dataclass union
            violations.append(f"{where} is not a LocalOp or ExchangeOp")

    return violations


def _check_colocation(contract: tuple[tuple[str, str], ...],
                      current_key: dict[str, str], defined: set[str],
                      where: str, violations: list[str]) -> None:
    for name, column in contract:
        if name not in defined:
            violations.append(
                f"{where} requires co-location of undefined "
                f"register {name!r}")
            return
    for name, column in contract:
        key = current_key.get(name)
        if key != column:
            have = f"hashed on {key!r}" if key else "not hash-partitioned"
            violations.append(
                f"{where} requires {name!r} hashed on {column!r} "
                f"but it is {have} at this point")


def verify_exchange_plan(plan: ExchangePlan,
                         pass_name: str = "exchange_plan") -> ExchangePlan:
    """Raise :class:`VerificationError` if ``plan`` is invalid."""
    violations = check_exchange_plan(plan)
    if violations:
        raise VerificationError(pass_name, violations)
    return plan
