"""Storage-layer verifier: SegmentedTable consolidation invariants.

The append-only loop path accumulates immutable segments and rebuilds
contiguous columns lazily (see :mod:`repro.storage.segmented`).  Two
families of invariants must survive every append/consolidate cycle:

* **watermarks** — the per-segment cumulative row counts are strictly
  increasing (appends are never empty) and the final watermark equals
  the table's ``num_rows``;
* **consolidated columns** — after consolidation, every column's dtype
  matches its schema type's numpy dtype, every column (and its validity
  mask) has exactly ``num_rows`` entries, and the flat table agrees
  with the pre-consolidation row count.

The merge handler runs these checks after every fixpoint append when the
session's ``enable_plan_verifier`` option is on (pytest/smoke default),
so a regression in the O(|delta|) append path fails loudly instead of
silently corrupting loop results.
"""

from __future__ import annotations

from ..errors import VerificationError
from ..storage.segmented import SegmentedTable


def check_segmented_table(table: SegmentedTable,
                          consolidate: bool = False) -> list[str]:
    """All invariant violations in ``table`` (empty when well-formed).

    With ``consolidate=True`` the check forces a consolidation and also
    validates the contiguous columns; otherwise only the metadata
    invariants (watermarks, schema arity) are checked, leaving the
    table's lazy state untouched.
    """
    violations: list[str] = []
    marks = table.watermarks
    total = table.num_rows
    if len(marks) != table.segment_count:
        violations.append(
            f"{len(marks)} watermarks for {table.segment_count} segments")
    previous = 0
    for i, mark in enumerate(marks):
        if mark <= previous and not (mark == 0 and previous == 0):
            violations.append(
                f"watermark {i} is {mark}, not above the preceding "
                f"{previous} (segments must never be empty)")
        previous = mark
    if marks and marks[-1] != total:
        violations.append(
            f"final watermark {marks[-1]} disagrees with num_rows "
            f"{total}")
    for segment in table._segments:
        if len(segment.schema) != len(table.schema):
            violations.append(
                f"segment arity {len(segment.schema)} diverges from the "
                f"table schema arity {len(table.schema)}")
            break
    if not consolidate:
        return violations

    columns = table.columns  # forces consolidation
    for col_schema, column in zip(table.schema.columns, columns):
        expected = col_schema.sql_type.numpy_dtype
        if column.data.dtype != expected:
            violations.append(
                f"consolidated column {col_schema.name!r} has dtype "
                f"{column.data.dtype}, schema says {expected}")
        if len(column) != total:
            violations.append(
                f"consolidated column {col_schema.name!r} has "
                f"{len(column)} rows, table has {total}")
        if len(column.mask) != len(column.data):
            violations.append(
                f"consolidated column {col_schema.name!r} mask length "
                f"{len(column.mask)} diverges from data length "
                f"{len(column.data)}")
    if table.num_rows != total:
        violations.append(
            f"consolidation changed num_rows from {total} to "
            f"{table.num_rows}")
    return violations


def verify_segmented_table(table: SegmentedTable, pass_name: str,
                           consolidate: bool = False) -> None:
    """Raise :class:`VerificationError` if ``table`` violates the
    consolidation invariants."""
    violations = check_segmented_table(table, consolidate=consolidate)
    if violations:
        raise VerificationError(pass_name, violations)
