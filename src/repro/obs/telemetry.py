"""Per-iteration loop telemetry: the convergence curve of one loop.

Every loop the system runs — ITERATIVE CTEs, recursive (fixpoint) CTEs,
the MPP-iterative driver, and the middleware / stored-procedure
baselines — produces one :class:`LoopTelemetry` with one
:class:`IterationRecord` per trip around the loop.  The record schema is
deliberately identical across the loop kinds so a benchmark trajectory
can compare them; fields a kind cannot measure stay zero (e.g.
``shuffles`` on a single node, ``kernel_cache_hits`` on the simulated
cluster).

``delta_rows`` over the iteration index *is* the convergence curve: the
number of rows the iteration actually changed (updated rows for
ITERATIVE with an UPDATES/DELTA condition, newly discovered rows for
fixpoints, full working-table size for full-refresh loops like PageRank
where every row is rewritten each trip).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class IterationRecord:
    """Measurements for one trip around one loop."""

    index: int                  # 1-based iteration number
    seconds: float              # wall time of this iteration
    delta_rows: int             # rows changed/added by this iteration
    working_rows: int           # size of the working/candidate table
    total_rows: int             # size of the accumulated CTE result
    kernel_cache_hits: int = 0
    kernel_cache_misses: int = 0
    rows_moved: int = 0         # data movement (copies / shuffles)
    bytes_moved: int = 0
    shuffles: int = 0           # MPP exchange motions

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "seconds": self.seconds,
            "delta_rows": self.delta_rows,
            "working_rows": self.working_rows,
            "total_rows": self.total_rows,
            "kernel_cache_hits": self.kernel_cache_hits,
            "kernel_cache_misses": self.kernel_cache_misses,
            "rows_moved": self.rows_moved,
            "bytes_moved": self.bytes_moved,
            "shuffles": self.shuffles,
        }


# The stable key set of one iteration record in the trace JSON schema.
ITERATION_RECORD_KEYS = frozenset(
    IterationRecord(0, 0.0, 0, 0, 0).to_dict())


@dataclass
class LoopTelemetry:
    """All iterations of one loop, plus its identity."""

    loop_id: int
    cte: str                    # user-visible CTE / state-table name
    # "iterative" | "fixpoint" | "mpp" | "middleware" | "procedure"
    kind: str
    records: list[IterationRecord] = field(default_factory=list)
    # The LoopStrategy that ran the loop (None for loop kinds without
    # strategy selection); "from->to" after a mid-loop demotion.
    strategy: Optional[str] = None

    @property
    def iterations(self) -> int:
        return len(self.records)

    def to_dict(self) -> dict:
        return {
            "loop_id": self.loop_id,
            "cte": self.cte,
            "kind": self.kind,
            "strategy": self.strategy,
            "iterations": [record.to_dict() for record in self.records],
        }


def render_iteration_table(telemetry: LoopTelemetry) -> list[str]:
    """The EXPLAIN ANALYZE per-iteration breakdown for one loop."""
    lines = [f"loop {telemetry.loop_id} ({telemetry.cte}, "
             f"{telemetry.kind}): {telemetry.iterations} iterations"]
    if not telemetry.records:
        return lines
    show_motion = any(r.rows_moved for r in telemetry.records)
    show_shuffles = any(r.shuffles for r in telemetry.records)
    header = (f"  {'iter':>6}  {'seconds':>9}  {'delta_rows':>10}  "
              f"{'working_rows':>12}  {'total_rows':>10}  "
              f"{'cache_hits':>10}  {'cache_misses':>12}")
    if show_motion:
        header += f"  {'rows_moved':>10}  {'bytes_moved':>11}"
    if show_shuffles:
        header += f"  {'shuffles':>8}"
    lines.append(header)
    for record in telemetry.records:
        row = (f"  {record.index:>6}  {record.seconds:>9.4f}  "
               f"{record.delta_rows:>10}  {record.working_rows:>12}  "
               f"{record.total_rows:>10}  {record.kernel_cache_hits:>10}  "
               f"{record.kernel_cache_misses:>12}")
        if show_motion:
            row += f"  {record.rows_moved:>10}  {record.bytes_moved:>11}"
        if show_shuffles:
            row += f"  {record.shuffles:>8}"
        lines.append(row)
    return lines
