"""Metrics registry: counters, gauges, and histograms by name.

Generalizes the two ad-hoc counter surfaces the engine grew first —
:class:`~repro.execution.context.ExecutionStats` (flat per-session ints)
and the kernel-cache hit/miss counters that live on it — into one named
registry with three instrument kinds:

* **Counter** — monotonically increasing count (events, rows).
* **Gauge** — last-written value (sizes, cumulative stats mirrored via
  :meth:`MetricsRegistry.ingest`).
* **Histogram** — streaming summary (count/sum/min/max/mean) of an
  observed distribution, e.g. per-statement latency or per-iteration
  delta sizes.  No buckets: the consumers here are trend lines, and a
  five-number summary keeps ``observe`` O(1) with no allocation.

The hot execution path keeps writing plain ``ExecutionStats`` integers
(attribute increments are the cheapest thing Python can do); the
registry *absorbs* those on demand with :meth:`ingest`, so benchmarks
and trace export read one unified namespace, e.g. ``stats.rows_scanned``
next to ``statement_seconds``.
"""

from __future__ import annotations

import threading
from typing import Mapping, Optional


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """Constant-space summary of an observed distribution."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named metrics, created on first touch.

    The registry is engine-level state shared by every server session,
    so its name->instrument maps mutate only under ``_lock`` (re-entrant:
    ``ingest`` creates gauges through ``gauge``).  The instruments
    themselves stay lock-free — callers that cache a ``Counter`` pay
    nothing for the registry lock, and a concurrently torn histogram
    update skews instrumentation, never a query result (the same
    tolerated-lossy policy as ``ExecutionStats``; see the guard map in
    :mod:`repro.verify.concurrency.guards`).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.RLock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name)
        return metric

    def ingest(self, values: Mapping[str, int], prefix: str = "") -> None:
        """Mirror a flat counter snapshot (e.g. ``ExecutionStats``) into
        gauges named ``prefix + key``."""
        with self._lock:
            for key, value in values.items():
                self.gauge(prefix + key).set(value)

    def snapshot(self) -> dict:
        """One JSON-friendly view of every metric."""
        with self._lock:
            return {
                "counters": {name: c.value
                             for name, c in sorted(self._counters.items())},
                "gauges": {name: g.value
                           for name, g in sorted(self._gauges.items())},
                "histograms": {name: h.summary()
                               for name, h
                               in sorted(self._histograms.items())},
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
