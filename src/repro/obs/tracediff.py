"""Trace diff: native vs baseline span trees (Fig. 1 / Fig. 11).

The paper's headline comparisons put the native iterative rewrite next
to a middleware driver (Fig. 1: one statement vs a storm of DDL/DML
round trips) and a stored-procedure loop (Fig. 11).  Both baselines
publish ``baseline``/``statement`` span trees plus per-loop telemetry
through :meth:`Database.publish_trace`; the native engine publishes
``query`` traces with ``step`` spans.  This module aligns the two shapes
so the writeups can quote a single diff instead of two raw span trees:

* wall clock and speedup,
* statement counts by category (the §II metadata/locking overhead),
* per-loop iteration counts and ``delta_rows`` convergence curves,
  checked for agreement (the baselines must converge identically —
  differing curves mean the baseline computes something else).

Works on the exported trace dict (``Trace.to_dict()`` /
``Database.trace_json()``), so it runs both in-process and over saved
JSON artifacts: ``python -m repro.obs.tracediff native.json
baseline.json`` (also reachable through ``scripts/check_trace_diff.sh``).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ReproError
from .export import validate_trace_dict

_STATEMENT_CATEGORIES = ("ddl", "dml", "probe")


@dataclass
class LoopDigest:
    """One loop's convergence behaviour, shape-independent."""

    cte: str
    kind: str
    strategy: Optional[str]
    iterations: int
    delta_rows: list[int]
    seconds: float


@dataclass
class TraceSummary:
    """One trace reduced to the quantities the diff compares."""

    label: str            # "native", "middleware", "procedure:<name>"
    family: str           # "native" | "middleware" | "procedure"
    seconds: float
    statements: dict[str, int] = field(default_factory=dict)
    step_spans: int = 0
    loops: list[LoopDigest] = field(default_factory=list)

    @property
    def statement_total(self) -> int:
        return sum(self.statements.values())


def _walk_spans(span: dict):
    yield span
    for child in span.get("children", ()):
        yield from _walk_spans(child)


def summarize_trace(data: dict) -> TraceSummary:
    """Classify and digest one exported trace dict."""
    validate_trace_dict(data)
    root = data["root"]
    anchor = next((span for span in _walk_spans(root)
                   if span["kind"] in ("query", "baseline")), None)
    if anchor is None:
        raise ReproError(
            "trace has neither a query span (native) nor a baseline "
            "span (middleware/procedure); nothing to diff")
    if anchor["kind"] == "query":
        label, family = "native", "native"
    elif anchor["name"].startswith("procedure"):
        label, family = anchor["name"], "procedure"
    else:
        label, family = anchor["name"], "middleware"

    statements: dict[str, int] = {}
    step_spans = 0
    for span in _walk_spans(anchor):
        if span["kind"] == "statement":
            category = span["attributes"].get("category", "other")
            statements[category] = statements.get(category, 0) + 1
        elif span["kind"] == "step":
            step_spans += 1

    loops = [
        LoopDigest(
            cte=loop["cte"],
            kind=loop["kind"],
            strategy=loop["strategy"],
            iterations=len(loop["iterations"]),
            delta_rows=[record["delta_rows"]
                        for record in loop["iterations"]],
            seconds=sum(record["seconds"]
                        for record in loop["iterations"]),
        )
        for loop in data["loops"]
    ]
    return TraceSummary(label=label, family=family,
                        seconds=anchor["seconds"],
                        statements=statements, step_spans=step_spans,
                        loops=loops)


@dataclass
class LoopComparison:
    """One loop aligned across the two traces (matched by CTE name)."""

    cte: str
    native: Optional[LoopDigest]
    baseline: Optional[LoopDigest]

    @property
    def iterations_match(self) -> bool:
        return (self.native is not None and self.baseline is not None
                and self.native.iterations == self.baseline.iterations)

    @property
    def convergence_match(self) -> bool:
        return (self.native is not None and self.baseline is not None
                and self.native.delta_rows == self.baseline.delta_rows)


@dataclass
class TraceDiff:
    """The full native-vs-baseline comparison."""

    native: TraceSummary
    baseline: TraceSummary
    loops: list[LoopComparison]

    @property
    def speedup(self) -> Optional[float]:
        if self.native.seconds <= 0:
            return None
        return self.baseline.seconds / self.native.seconds

    @property
    def agreement(self) -> bool:
        """Every aligned loop converged identically."""
        return all(c.iterations_match and c.convergence_match
                   for c in self.loops)


def diff_traces(native: dict, baseline: dict) -> TraceDiff:
    """Diff two exported trace dicts: one native, one baseline.

    Order-insensitive: the two arguments are classified by their span
    kinds and swapped if needed, so callers can pass traces in either
    order.
    """
    first, second = summarize_trace(native), summarize_trace(baseline)
    if first.family != "native" and second.family == "native":
        first, second = second, first
    if first.family != "native":
        raise ReproError("neither trace is a native engine trace")
    if second.family == "native":
        raise ReproError("both traces are native engine traces; one "
                         "must be a middleware/procedure baseline")

    by_cte = {loop.cte: loop for loop in second.loops}
    comparisons = [LoopComparison(loop.cte, loop, by_cte.pop(loop.cte,
                                                            None))
                   for loop in first.loops]
    comparisons.extend(LoopComparison(cte, None, loop)
                       for cte, loop in sorted(by_cte.items()))
    return TraceDiff(native=first, baseline=second, loops=comparisons)


def render_diff(diff: TraceDiff) -> str:
    """Human-readable diff for the Fig. 1 / Fig. 11 writeups."""
    native, baseline = diff.native, diff.baseline
    lines = [f"trace diff: native vs {baseline.label}"]
    speedup = diff.speedup
    ratio = f" ({speedup:.2f}x)" if speedup is not None else ""
    lines.append(f"  wall clock : native {native.seconds:.4f}s, "
                 f"{baseline.label} {baseline.seconds:.4f}s{ratio}")
    categories = ", ".join(
        f"{name}={baseline.statements[name]}"
        for name in _STATEMENT_CATEGORIES if name in baseline.statements)
    lines.append(f"  statements : {baseline.label} issued "
                 f"{baseline.statement_total} SQL statements"
                 f"{' (' + categories + ')' if categories else ''}; "
                 f"native ran 1 statement / {native.step_spans} steps")
    for comparison in diff.loops:
        n, b = comparison.native, comparison.baseline
        if n is None or b is None:
            present = "baseline" if n is None else "native"
            lines.append(f"  loop {comparison.cte} : only in the "
                         f"{present} trace")
            continue
        verdict = "match" if comparison.iterations_match else "MISMATCH"
        lines.append(f"  loop {comparison.cte} : native {n.iterations} "
                     f"iterations ({n.strategy or n.kind}), "
                     f"{baseline.family} {b.iterations} [{verdict}]")
        curve = ("identical" if comparison.convergence_match
                 else f"DIVERGE native={n.delta_rows} "
                      f"baseline={b.delta_rows}")
        lines.append(f"    convergence (delta_rows): {curve}")
    lines.append(f"  agreement  : "
                 f"{'ok' if diff.agreement else 'MISMATCH'}")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-tracediff",
        description="Diff a native engine trace against a middleware/"
                    "procedure baseline trace (Fig. 1 / Fig. 11).")
    parser.add_argument("native", help="trace JSON file (either side)")
    parser.add_argument("baseline", help="trace JSON file (other side)")
    parser.add_argument("--require-agreement", action="store_true",
                        help="exit non-zero unless every loop matches "
                             "iterations and convergence")
    args = parser.parse_args(argv)

    with open(args.native) as handle:
        native = json.load(handle)
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    diff = diff_traces(native, baseline)
    print(render_diff(diff))
    if args.require_agreement and not diff.agreement:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
