"""Stable machine-readable run artifacts: trace JSON and BENCH JSON.

Two documented schemas live here, each with a validator used by the
tests and by ``scripts/check_obs_smoke.sh``.  Both schemas are versioned
with a top-level integer ``schema_version``; any key removal or type
change bumps it.

**Trace schema** (``Database.trace_json()``, version 1)::

    {
      "schema_version": 1,
      "engine": "repro-dbspinner",
      "sql": str | null,
      "root": <span>,
      "loops": [
        {"loop_id": int, "cte": str,
         "kind": "iterative" | "fixpoint" | "mpp"
               | "middleware" | "procedure",
         "strategy": str | null,
         "iterations": [<iteration record>, ...]},
        ...
      ],
      "metrics": {str: int | float, ...}
    }

    <span> = {"name": str, "kind": str, "seconds": float,
              "attributes": {str: scalar}, "children": [<span>, ...]}

    <iteration record> = {"index", "seconds", "delta_rows",
                          "working_rows", "total_rows",
                          "kernel_cache_hits", "kernel_cache_misses",
                          "rows_moved", "bytes_moved", "shuffles"}

**Bench schema** (``harness.write_bench_artifact``, version 1)::

    {
      "schema_version": 1,
      "benchmark": str,
      "created_unix": float,
      "measurements": [{"label", "seconds", "repeats", "stdev",
                        "all_seconds"}, ...],
      "comparisons": [{"name", "baseline": <measurement>,
                       "optimized": <measurement>,
                       "speedup", "improvement_pct"}, ...],
      "extra": {...}
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .telemetry import ITERATION_RECORD_KEYS, LoopTelemetry
from .trace import Span, Tracer

TRACE_SCHEMA_VERSION = 1
BENCH_SCHEMA_VERSION = 1
ENGINE_NAME = "repro-dbspinner"

_TRACE_KEYS = frozenset(
    {"schema_version", "engine", "sql", "root", "loops", "metrics"})
_SPAN_KEYS = frozenset(
    {"name", "kind", "seconds", "attributes", "children"})
_LOOP_KEYS = frozenset(
    {"loop_id", "cte", "kind", "strategy", "iterations"})
_LOOP_KINDS = frozenset(
    {"iterative", "fixpoint", "mpp", "middleware", "procedure"})

# Structured event kinds (zero-duration spans) carry a documented
# attribute contract on top of the open attribute map; the validator
# enforces presence so downstream tooling (repro-profile's decision
# timeline, the trace diff) can rely on the keys.  ``decision`` events
# additionally have a closed name set — each name is one decision the
# runtime can take, with its own required attributes.
_EVENT_REQUIRED_ATTRS = {
    "morsel": frozenset({"morsels", "rows", "workers", "parallel"}),
}
_DECISION_COMMON_ATTRS = frozenset({"loop_id", "reason"})
_DECISION_EVENT_ATTRS = {
    "strategy_selection": frozenset({"strategy"}),
    "strategy_demotion": frozenset(
        {"from_strategy", "to_strategy", "iteration", "frontier",
         "total", "budget_frontier"}),
    "strategy_promotion": frozenset(
        {"from_strategy", "to_strategy", "iteration", "frontier",
         "total", "budget_frontier"}),
    "loop_estimate": frozenset(
        {"cte", "estimated_iterations", "basis"}),
}
DECISION_EVENT_NAMES = frozenset(_DECISION_EVENT_ATTRS)


@dataclass
class Trace:
    """One traced statement: the span tree plus loop and metric views."""

    root: Span
    loops: list[LoopTelemetry] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    sql: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "engine": ENGINE_NAME,
            "sql": self.sql,
            "root": self.root.to_dict(),
            "loops": [telemetry.to_dict() for telemetry in self.loops],
            "metrics": dict(self.metrics),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def build_trace(tracer: Tracer, loops: Iterable[LoopTelemetry] = (),
                metrics: Optional[dict] = None,
                sql: Optional[str] = None) -> Trace:
    """Freeze a tracer into an exportable :class:`Trace` (closes any
    still-open spans, including the root)."""
    tracer.finish()
    return Trace(root=tracer.root, loops=list(loops),
                 metrics=dict(metrics or {}), sql=sql)


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def _fail(message: str) -> None:
    raise ValueError(f"trace schema violation: {message}")


def _validate_span(span, path: str) -> None:
    if not isinstance(span, dict):
        _fail(f"{path} is not an object")
    if set(span) != _SPAN_KEYS:
        _fail(f"{path} keys {sorted(span)} != {sorted(_SPAN_KEYS)}")
    if not isinstance(span["name"], str) or not isinstance(
            span["kind"], str):
        _fail(f"{path} name/kind must be strings")
    if not isinstance(span["seconds"], (int, float)):
        _fail(f"{path}.seconds is not a number")
    if not isinstance(span["attributes"], dict):
        _fail(f"{path}.attributes is not an object")
    for key, value in span["attributes"].items():
        if not isinstance(key, str):
            _fail(f"{path}.attributes has a non-string key")
        if value is not None and not isinstance(value,
                                                (bool, int, float, str)):
            _fail(f"{path}.attributes[{key!r}] is not a scalar")
    required = _EVENT_REQUIRED_ATTRS.get(span["kind"])
    if span["kind"] == "decision":
        required = _DECISION_EVENT_ATTRS.get(span["name"])
        if required is None:
            _fail(f"{path} is a decision event with unknown name "
                  f"{span['name']!r} (known: "
                  f"{sorted(DECISION_EVENT_NAMES)})")
        required = required | _DECISION_COMMON_ATTRS
    if required is not None:
        missing = required - set(span["attributes"])
        if missing:
            _fail(f"{path} ({span['kind']} event {span['name']!r}) is "
                  f"missing required attributes {sorted(missing)}")
    if not isinstance(span["children"], list):
        _fail(f"{path}.children is not a list")
    for index, child in enumerate(span["children"]):
        _validate_span(child, f"{path}.children[{index}]")


def _validate_loop(loop, path: str) -> None:
    if not isinstance(loop, dict):
        _fail(f"{path} is not an object")
    if set(loop) != _LOOP_KEYS:
        _fail(f"{path} keys {sorted(loop)} != {sorted(_LOOP_KEYS)}")
    if not isinstance(loop["loop_id"], int):
        _fail(f"{path}.loop_id is not an int")
    if not isinstance(loop["cte"], str):
        _fail(f"{path}.cte is not a string")
    if loop["kind"] not in _LOOP_KINDS:
        _fail(f"{path}.kind {loop['kind']!r} not in {sorted(_LOOP_KINDS)}")
    if loop["strategy"] is not None \
            and not isinstance(loop["strategy"], str):
        _fail(f"{path}.strategy is neither null nor a string")
    if not isinstance(loop["iterations"], list):
        _fail(f"{path}.iterations is not a list")
    for index, record in enumerate(loop["iterations"]):
        rpath = f"{path}.iterations[{index}]"
        if not isinstance(record, dict):
            _fail(f"{rpath} is not an object")
        if set(record) != ITERATION_RECORD_KEYS:
            _fail(f"{rpath} keys {sorted(record)} != "
                  f"{sorted(ITERATION_RECORD_KEYS)}")
        for key, value in record.items():
            if not isinstance(value, (int, float)):
                _fail(f"{rpath}[{key!r}] is not a number")
        if record["index"] != index + 1:
            _fail(f"{rpath}.index is {record['index']}, expected "
                  f"{index + 1} (records must be dense and 1-based)")


def validate_trace_dict(data) -> None:
    """Raise ``ValueError`` unless ``data`` matches the trace schema."""
    if not isinstance(data, dict):
        _fail("top level is not an object")
    if set(data) != _TRACE_KEYS:
        _fail(f"top-level keys {sorted(data)} != {sorted(_TRACE_KEYS)}")
    if data["schema_version"] != TRACE_SCHEMA_VERSION:
        _fail(f"schema_version {data['schema_version']!r} != "
              f"{TRACE_SCHEMA_VERSION}")
    if data["engine"] != ENGINE_NAME:
        _fail(f"engine {data['engine']!r} != {ENGINE_NAME!r}")
    if data["sql"] is not None and not isinstance(data["sql"], str):
        _fail("sql is neither null nor a string")
    _validate_span(data["root"], "root")
    if not isinstance(data["loops"], list):
        _fail("loops is not a list")
    for index, loop in enumerate(data["loops"]):
        _validate_loop(loop, f"loops[{index}]")
    if not isinstance(data["metrics"], dict):
        _fail("metrics is not an object")
    for key, value in data["metrics"].items():
        if not isinstance(key, str) or not isinstance(value, (int, float)):
            _fail(f"metrics[{key!r}] is not a numeric scalar")


_MEASUREMENT_KEYS = frozenset(
    {"label", "seconds", "repeats", "stdev", "all_seconds"})
_COMPARISON_KEYS = frozenset(
    {"name", "baseline", "optimized", "speedup", "improvement_pct"})
_BENCH_KEYS = frozenset(
    {"schema_version", "benchmark", "created_unix", "measurements",
     "comparisons", "extra"})


def _validate_measurement(record, path: str) -> None:
    if not isinstance(record, dict) or set(record) != _MEASUREMENT_KEYS:
        _fail(f"{path} is not a measurement record")
    if not isinstance(record["label"], str):
        _fail(f"{path}.label is not a string")
    if not isinstance(record["seconds"], (int, float)):
        _fail(f"{path}.seconds is not a number")
    if not isinstance(record["all_seconds"], list):
        _fail(f"{path}.all_seconds is not a list")


def validate_bench_dict(data) -> None:
    """Raise ``ValueError`` unless ``data`` matches the bench schema."""
    if not isinstance(data, dict):
        _fail("bench top level is not an object")
    if set(data) != _BENCH_KEYS:
        _fail(f"bench top-level keys {sorted(data)} != "
              f"{sorted(_BENCH_KEYS)}")
    if data["schema_version"] != BENCH_SCHEMA_VERSION:
        _fail(f"bench schema_version {data['schema_version']!r} != "
              f"{BENCH_SCHEMA_VERSION}")
    if not isinstance(data["benchmark"], str):
        _fail("bench benchmark is not a string")
    if not isinstance(data["created_unix"], (int, float)):
        _fail("bench created_unix is not a number")
    for index, record in enumerate(data["measurements"]):
        _validate_measurement(record, f"measurements[{index}]")
    for index, record in enumerate(data["comparisons"]):
        path = f"comparisons[{index}]"
        if not isinstance(record, dict) or set(record) != _COMPARISON_KEYS:
            _fail(f"{path} is not a comparison record")
        _validate_measurement(record["baseline"], f"{path}.baseline")
        _validate_measurement(record["optimized"], f"{path}.optimized")
    if not isinstance(data["extra"], dict):
        _fail("bench extra is not an object")
