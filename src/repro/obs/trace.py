"""Hierarchical span tracer: where time goes inside one iterative plan.

DBSpinner's evaluation is entirely about attributing end-to-end time to
pieces of a *single* plan — data movement between iterations (Fig. 8),
loop-invariant subtrees (Fig. 9), per-iteration deltas.  The tracer
records that attribution as a tree of :class:`Span` objects:

    query → phase (parse / plan / rewrite / compile / execute)
          → program step → loop iteration

A :class:`Tracer` is created per traced statement and threaded through
the :class:`~repro.execution.context.ExecutionContext` (and the plan
context) — there is no global state, so concurrent sessions cannot see
each other's spans.  When tracing is off the engine passes
:data:`NULL_TRACER`, whose every operation is a no-op attribute lookup,
keeping the untraced hot path within noise of the pre-tracing engine.

Spans carry wall time, a ``kind`` tag, and a flat scalar attribute map;
the stable JSON projection lives in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional


def _scalar(value):
    """Attributes are JSON scalars; anything else is stringified."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class Span:
    """One timed node of the trace tree."""

    __slots__ = ("name", "kind", "attributes", "children", "started",
                 "seconds")

    def __init__(self, name: str, kind: str = "span",
                 attributes: Optional[dict] = None):
        self.name = name
        self.kind = kind
        self.attributes = dict(attributes) if attributes else {}
        self.children: list["Span"] = []
        self.started = time.perf_counter()
        self.seconds = 0.0

    def set(self, **attributes) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attributes.update(attributes)

    def find(self, name: str, kind: Optional[str] = None
             ) -> Optional["Span"]:
        """Depth-first search for the first descendant with ``name``."""
        for child in self.children:
            if child.name == name and (kind is None or child.kind == kind):
                return child
            found = child.find(name, kind)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "seconds": self.seconds,
            "attributes": {key: _scalar(value)
                           for key, value in self.attributes.items()},
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, kind={self.kind!r}, "
                f"children={len(self.children)})")


def span_from_dict(data: dict) -> Span:
    """Rebuild a (closed) :class:`Span` tree from its ``to_dict`` form.

    The inverse of :meth:`Span.to_dict` for *finished* spans: ``seconds``
    is restored as recorded and ``started`` is meaningless afterwards —
    wall-clock anchors do not survive serialization (and are not
    comparable across processes anyway)."""
    span = Span(data["name"], data["kind"], data.get("attributes"))
    span.seconds = float(data.get("seconds", 0.0))
    span.children = [span_from_dict(child)
                     for child in data.get("children", ())]
    return span


@dataclass(frozen=True)
class TraceContext:
    """A serializable handle onto one open span of a parent trace.

    Child workers (threads today, ``multiprocessing`` workers for the
    real shared-nothing executor) cannot share a :class:`Tracer`: spans
    are mutable and the open-span stack is single-owner.  Instead the
    parent captures a ``TraceContext`` at the point in the tree where
    the child's work belongs, ships it across the process boundary
    (it is a frozen dataclass of scalars — picklable and JSON-safe),
    and the child builds a :class:`ContextTracer` from it.  The child's
    spans buffer locally; on join the parent grafts them back with
    :meth:`Tracer.merge`, so the merged trace is shaped exactly as if
    the work had run inline.

    ``path`` (root → capture point span names) re-anchors the merge when
    the capturing tracer object is gone — e.g. a coordinator process
    that itself reports to a remote parent.
    """

    trace_id: str
    context_id: int
    path: tuple[str, ...]

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id,
                "context_id": self.context_id,
                "path": list(self.path)}

    @classmethod
    def from_dict(cls, data: dict) -> "TraceContext":
        return cls(trace_id=data["trace_id"],
                   context_id=int(data["context_id"]),
                   path=tuple(data["path"]))


class Tracer:
    """Builds one span tree via an explicit open-span stack.

    ``start``/``end`` exist for code (like the program runner) whose span
    boundaries do not nest lexically; ``span`` is the context-manager
    sugar for code where they do.  ``end`` unwinds the stack *through*
    the given span, so a span abandoned by an exception is closed by the
    first enclosing ``end`` instead of leaking.
    """

    enabled = True

    def __init__(self, name: str = "trace",
                 trace_id: Optional[str] = None):
        self.root = Span(name, "root")
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self._stack: list[Span] = [self.root]
        # Spans pinned by context() so merge() can graft worker spans
        # onto the exact capture point even after the span has closed.
        self._context_spans: dict[int, Span] = {}

    @property
    def current(self) -> Span:
        return self._stack[-1]

    def start(self, name: str, kind: str = "span", **attributes) -> Span:
        span = Span(name, kind, attributes)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> None:
        if span not in self._stack:
            return
        now = time.perf_counter()
        while len(self._stack) > 1:
            top = self._stack.pop()
            top.seconds = now - top.started
            if top is span:
                break

    @contextmanager
    def span(self, name: str, kind: str = "span", **attributes):
        opened = self.start(name, kind, **attributes)
        try:
            yield opened
        finally:
            self.end(opened)

    def event(self, name: str, kind: str = "event", **attributes) -> None:
        """A zero-duration child of the current span."""
        span = Span(name, kind, attributes)
        self._stack[-1].children.append(span)

    def finish(self) -> Span:
        """Close every open span (including the root) and return it."""
        now = time.perf_counter()
        while self._stack:
            top = self._stack.pop()
            top.seconds = now - top.started
        self._stack = [self.root]
        return self.root

    # -- process-safe contexts ----------------------------------------------

    def context(self) -> TraceContext:
        """Capture the current span as a serializable merge target.

        The returned :class:`TraceContext` can cross a process boundary;
        the capture span itself is pinned locally so :meth:`merge` grafts
        exported worker spans under it later, open or closed."""
        context_id = len(self._context_spans)
        self._context_spans[context_id] = self.current
        path = tuple(span.name for span in self._stack)
        return TraceContext(self.trace_id, context_id, path)

    def merge(self, context: TraceContext,
              spans: Iterable[dict]) -> None:
        """Graft serialized worker spans under ``context``'s capture span.

        ``spans`` is what :meth:`ContextTracer.export_spans` returned on
        the worker side.  A context from another trace id is rejected —
        merging foreign spans would silently corrupt attribution.  If the
        capture span is unknown (a context re-created from its dict in a
        different process), the span ``path`` re-anchors the merge, falling
        back to the root."""
        if context.trace_id != self.trace_id:
            raise ValueError(
                f"cannot merge context of trace {context.trace_id!r} "
                f"into trace {self.trace_id!r}")
        anchor = self._context_spans.get(context.context_id)
        if anchor is None:
            anchor = self._span_at_path(context.path)
        for data in spans:
            anchor.children.append(span_from_dict(data))

    def _span_at_path(self, path: tuple[str, ...]) -> Span:
        """The first span matching a root→target name path (the merge
        fallback when the capture span object is unavailable)."""
        if not path or path[0] != self.root.name:
            return self.root
        cursor = self.root
        for name in path[1:]:
            child = next((c for c in cursor.children if c.name == name),
                         None)
            if child is None:
                return cursor
            cursor = child
        return cursor


class _NullSpan:
    """Inert span: accepts every operation, records nothing.  Doubles as
    its own context manager so ``with tracer.span(...)`` costs only the
    call."""

    __slots__ = ()
    name = ""
    kind = "null"
    seconds = 0.0
    attributes: dict = {}
    children: list = []

    def set(self, **attributes) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class ContextTracer(Tracer):
    """The worker-side tracer built from a serialized
    :class:`TraceContext`.

    Spans buffer under a synthetic local root; :meth:`export_spans`
    closes them and returns their serialized forms for the parent to
    :meth:`Tracer.merge`.  Identical API to :class:`Tracer`, so worker
    code is oblivious to which side of the process boundary it runs on.
    """

    def __init__(self, context: TraceContext):
        super().__init__(f"worker:{context.trace_id}",
                         trace_id=context.trace_id)
        self.context = context

    def export_spans(self) -> list[dict]:
        """Close all buffered spans and serialize them for the merge."""
        self.finish()
        return [child.to_dict() for child in self.root.children]


class NullTracer:
    """The disabled tracer: every method is a no-op (see module doc)."""

    enabled = False
    root = None
    trace_id = ""

    def span(self, name: str, kind: str = "span", **attributes):
        return _NULL_SPAN

    def start(self, name: str, kind: str = "span", **attributes):
        return _NULL_SPAN

    def end(self, span) -> None:
        pass

    def event(self, name: str, kind: str = "event", **attributes) -> None:
        pass

    def finish(self):
        return None

    def context(self) -> None:
        """No context: workers of an untraced run skip span buffering."""
        return None

    def merge(self, context, spans) -> None:
        pass


NULL_TRACER = NullTracer()


def render_span_tree(span: Span, indent: int = 0) -> str:
    """Human-readable tree: ``name [kind] 1.23ms {attr=value, ...}``."""
    pieces = [f"{'  ' * indent}{span.name} [{span.kind}] "
              f"{span.seconds * 1000:.2f}ms"]
    if span.attributes:
        inner = ", ".join(f"{key}={value}" for key, value
                          in span.attributes.items())
        pieces.append(f" {{{inner}}}")
    lines = ["".join(pieces)]
    for child in span.children:
        lines.append(render_span_tree(child, indent + 1))
    return "\n".join(lines)
