"""Hierarchical span tracer: where time goes inside one iterative plan.

DBSpinner's evaluation is entirely about attributing end-to-end time to
pieces of a *single* plan — data movement between iterations (Fig. 8),
loop-invariant subtrees (Fig. 9), per-iteration deltas.  The tracer
records that attribution as a tree of :class:`Span` objects:

    query → phase (parse / plan / rewrite / compile / execute)
          → program step → loop iteration

A :class:`Tracer` is created per traced statement and threaded through
the :class:`~repro.execution.context.ExecutionContext` (and the plan
context) — there is no global state, so concurrent sessions cannot see
each other's spans.  When tracing is off the engine passes
:data:`NULL_TRACER`, whose every operation is a no-op attribute lookup,
keeping the untraced hot path within noise of the pre-tracing engine.

Spans carry wall time, a ``kind`` tag, and a flat scalar attribute map;
the stable JSON projection lives in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional


def _scalar(value):
    """Attributes are JSON scalars; anything else is stringified."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class Span:
    """One timed node of the trace tree."""

    __slots__ = ("name", "kind", "attributes", "children", "started",
                 "seconds")

    def __init__(self, name: str, kind: str = "span",
                 attributes: Optional[dict] = None):
        self.name = name
        self.kind = kind
        self.attributes = dict(attributes) if attributes else {}
        self.children: list["Span"] = []
        self.started = time.perf_counter()
        self.seconds = 0.0

    def set(self, **attributes) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attributes.update(attributes)

    def find(self, name: str, kind: Optional[str] = None
             ) -> Optional["Span"]:
        """Depth-first search for the first descendant with ``name``."""
        for child in self.children:
            if child.name == name and (kind is None or child.kind == kind):
                return child
            found = child.find(name, kind)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "seconds": self.seconds,
            "attributes": {key: _scalar(value)
                           for key, value in self.attributes.items()},
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, kind={self.kind!r}, "
                f"children={len(self.children)})")


class Tracer:
    """Builds one span tree via an explicit open-span stack.

    ``start``/``end`` exist for code (like the program runner) whose span
    boundaries do not nest lexically; ``span`` is the context-manager
    sugar for code where they do.  ``end`` unwinds the stack *through*
    the given span, so a span abandoned by an exception is closed by the
    first enclosing ``end`` instead of leaking.
    """

    enabled = True

    def __init__(self, name: str = "trace"):
        self.root = Span(name, "root")
        self._stack: list[Span] = [self.root]

    @property
    def current(self) -> Span:
        return self._stack[-1]

    def start(self, name: str, kind: str = "span", **attributes) -> Span:
        span = Span(name, kind, attributes)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> None:
        if span not in self._stack:
            return
        now = time.perf_counter()
        while len(self._stack) > 1:
            top = self._stack.pop()
            top.seconds = now - top.started
            if top is span:
                break

    @contextmanager
    def span(self, name: str, kind: str = "span", **attributes):
        opened = self.start(name, kind, **attributes)
        try:
            yield opened
        finally:
            self.end(opened)

    def event(self, name: str, kind: str = "event", **attributes) -> None:
        """A zero-duration child of the current span."""
        span = Span(name, kind, attributes)
        self._stack[-1].children.append(span)

    def finish(self) -> Span:
        """Close every open span (including the root) and return it."""
        now = time.perf_counter()
        while self._stack:
            top = self._stack.pop()
            top.seconds = now - top.started
        self._stack = [self.root]
        return self.root


class _NullSpan:
    """Inert span: accepts every operation, records nothing.  Doubles as
    its own context manager so ``with tracer.span(...)`` costs only the
    call."""

    __slots__ = ()
    name = ""
    kind = "null"
    seconds = 0.0
    attributes: dict = {}
    children: list = []

    def set(self, **attributes) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every method is a no-op (see module doc)."""

    enabled = False
    root = None

    def span(self, name: str, kind: str = "span", **attributes):
        return _NULL_SPAN

    def start(self, name: str, kind: str = "span", **attributes):
        return _NULL_SPAN

    def end(self, span) -> None:
        pass

    def event(self, name: str, kind: str = "event", **attributes) -> None:
        pass

    def finish(self):
        return None


NULL_TRACER = NullTracer()


def render_span_tree(span: Span, indent: int = 0) -> str:
    """Human-readable tree: ``name [kind] 1.23ms {attr=value, ...}``."""
    pieces = [f"{'  ' * indent}{span.name} [{span.kind}] "
              f"{span.seconds * 1000:.2f}ms"]
    if span.attributes:
        inner = ", ".join(f"{key}={value}" for key, value
                          in span.attributes.items())
        pieces.append(f" {{{inner}}}")
    lines = ["".join(pieces)]
    for child in span.children:
        lines.append(render_span_tree(child, indent + 1))
    return "\n".join(lines)
