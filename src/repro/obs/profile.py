"""Profile aggregation over finished span trees (``repro-profile``).

A trace answers "what happened"; a profile answers "where did the time
go".  This module folds one trace (the :class:`~repro.obs.export.Trace`
JSON produced by ``Database.trace_json()``) into:

* **Stack aggregation** — inclusive/exclusive wall time per span stack
  (phase → step → kernel/morsel), with every ``iteration`` span of a
  loop folded into one frame so a 60-trip loop reads as one hot stack
  with ``count=60`` instead of 60 near-identical stacks.
* **Collapsed-stack export** — the ``a;b;c <weight>`` format flamegraph
  and speedscope both ingest (weights in microseconds of *exclusive*
  time, so the stacks sum to the root without double counting).
* **Loop rollups** — per-iteration cost statistics per loop, joined
  against the cost model's ``loop_estimate`` decision events so the
  report shows estimated vs measured iteration counts side by side.
* **Decision timeline** — the strategy selection / demotion / promotion
  decision events in document order, rendered as one line per decision
  (also embedded in EXPLAIN ANALYZE output).

Everything operates on the *dict* form of a trace (the JSON schema), so
the CLI can profile traces from other processes, other hosts, or old
runs without the engine in the loop.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .export import validate_trace_dict

# Zero-duration structured events: excluded from timing stacks (they
# carry no time), collected separately for the decision timeline.
_EVENT_KINDS = frozenset({"event", "morsel", "decision", "strategy"})


@dataclass
class ProfileEntry:
    """Aggregated timing of one span stack."""

    stack: tuple[str, ...]
    inclusive: float = 0.0
    exclusive: float = 0.0
    count: int = 0

    @property
    def frame(self) -> str:
        return self.stack[-1] if self.stack else ""


@dataclass
class LoopRollup:
    """Per-iteration cost statistics of one loop, plus the estimate."""

    cte: str
    kind: str
    strategy: Optional[str]
    iterations: int
    total_seconds: float
    mean_seconds: float
    median_seconds: float
    max_seconds: float
    estimated_iterations: Optional[float] = None
    estimate_basis: Optional[str] = None
    estimated_cost_per_iteration: Optional[float] = None


@dataclass
class Profile:
    """One folded trace: stacks, loop rollups, decisions."""

    entries: dict[tuple[str, ...], ProfileEntry] = field(
        default_factory=dict)
    loops: list[LoopRollup] = field(default_factory=list)
    decisions: list[dict] = field(default_factory=list)
    total_seconds: float = 0.0
    sql: Optional[str] = None

    def top(self, n: int = 10) -> list[ProfileEntry]:
        """The ``n`` hottest stacks by exclusive time."""
        return sorted(self.entries.values(),
                      key=lambda e: e.exclusive, reverse=True)[:n]


def _frame(span: dict) -> str:
    """One stack frame per span.  Iterations fold into a single frame
    (the per-iteration detail lives in the loop rollups); step spans are
    keyed by program position so the same step aggregates across
    iterations while distinct steps of the same type stay distinct."""
    if span["kind"] == "iteration":
        return "iteration"
    if span["kind"] == "step":
        index = span["attributes"].get("index")
        if index is not None:
            return f"{span['name']}#{index}"
    return span["name"]


def _fold_spans(span: dict, stack: tuple[str, ...],
                entries: dict[tuple[str, ...], ProfileEntry]) -> None:
    frame_stack = stack + (_frame(span),)
    entry = entries.get(frame_stack)
    if entry is None:
        entry = entries[frame_stack] = ProfileEntry(frame_stack)
    seconds = float(span["seconds"])
    timed_children = [child for child in span["children"]
                      if child["kind"] not in _EVENT_KINDS]
    child_seconds = sum(float(child["seconds"])
                        for child in timed_children)
    entry.inclusive += seconds
    entry.exclusive += max(0.0, seconds - child_seconds)
    entry.count += 1
    for child in timed_children:
        _fold_spans(child, frame_stack, entries)


def collect_events(root: dict, kinds: Iterable[str]) -> list[dict]:
    """All event spans of the given kinds, in document (DFS) order."""
    wanted = frozenset(kinds)
    found: list[dict] = []

    def walk(span: dict) -> None:
        if span["kind"] in wanted:
            found.append(span)
        for child in span["children"]:
            walk(child)

    walk(root)
    return found


def _loop_rollups(trace: dict) -> list[LoopRollup]:
    estimates = {event["attributes"].get("cte"): event["attributes"]
                 for event in collect_events(trace["root"], ("decision",))
                 if event["name"] == "loop_estimate"}
    rollups = []
    for loop in trace["loops"]:
        seconds = [record["seconds"] for record in loop["iterations"]]
        if not seconds:
            continue
        estimate = estimates.get(loop["cte"]) or {}
        rollups.append(LoopRollup(
            cte=loop["cte"],
            kind=loop["kind"],
            strategy=loop["strategy"],
            iterations=len(seconds),
            total_seconds=sum(seconds),
            mean_seconds=statistics.fmean(seconds),
            median_seconds=statistics.median(seconds),
            max_seconds=max(seconds),
            estimated_iterations=estimate.get("estimated_iterations"),
            estimate_basis=estimate.get("basis"),
            estimated_cost_per_iteration=estimate.get(
                "estimated_cost_per_iteration"),
        ))
    return rollups


def aggregate_profile(trace: dict) -> Profile:
    """Fold one trace dict into a :class:`Profile`."""
    profile = Profile(sql=trace.get("sql"))
    root = trace["root"]
    profile.total_seconds = float(root["seconds"])
    _fold_spans(root, (), profile.entries)
    profile.loops = _loop_rollups(trace)
    profile.decisions = [
        event for event in collect_events(root, ("decision",))
        if event["name"] != "loop_estimate"]
    return profile


def collapsed_stacks(trace: dict) -> list[str]:
    """The profile in collapsed-stack format: one ``a;b;c weight`` line
    per stack, weight = exclusive microseconds (flamegraph.pl and
    speedscope both read this directly)."""
    profile = aggregate_profile(trace)
    lines = []
    for entry in sorted(profile.entries.values(),
                        key=lambda e: e.stack):
        weight = int(round(entry.exclusive * 1e6))
        if weight <= 0:
            continue
        lines.append(f"{';'.join(entry.stack)} {weight}")
    return lines


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def render_decision_timeline(decisions: list[dict]) -> list[str]:
    """One line per runtime decision, in the order they were taken."""
    if not decisions:
        return []
    lines = ["decision timeline:"]
    for event in decisions:
        attrs = event["attributes"]
        name = event["name"]
        if name == "strategy_selection":
            lines.append(
                f"  loop {attrs['loop_id']}: selected "
                f"{attrs['strategy']} — {attrs['reason']}")
        elif name in ("strategy_demotion", "strategy_promotion"):
            verb = ("demoted" if name == "strategy_demotion"
                    else "promoted")
            lines.append(
                f"  loop {attrs['loop_id']}: {verb} "
                f"{attrs['from_strategy']} -> {attrs['to_strategy']} "
                f"after iteration {attrs['iteration']} "
                f"(measured frontier {attrs['frontier']}/{attrs['total']}"
                f" vs budget {attrs['budget_frontier']}) — "
                f"{attrs['reason']}")
        else:
            detail = ", ".join(f"{key}={value}" for key, value
                               in sorted(attrs.items()))
            lines.append(f"  {name}: {detail}")
    return lines


def _render_loop(rollup: LoopRollup) -> list[str]:
    strategy = f", strategy {rollup.strategy}" if rollup.strategy else ""
    lines = [f"loop {rollup.cte} ({rollup.kind}{strategy}): "
             f"{rollup.iterations} iterations, "
             f"{rollup.total_seconds * 1000:.2f}ms total"]
    lines.append(
        f"  per-iteration: mean {rollup.mean_seconds * 1000:.2f}ms, "
        f"median {rollup.median_seconds * 1000:.2f}ms, "
        f"max {rollup.max_seconds * 1000:.2f}ms")
    if rollup.estimated_iterations is not None:
        error = ((rollup.estimated_iterations - rollup.iterations)
                 / max(rollup.iterations, 1))
        line = (f"  estimated {rollup.estimated_iterations:.0f} "
                f"iterations ({rollup.estimate_basis}) vs measured "
                f"{rollup.iterations} ({error:+.0%})")
        if rollup.estimated_cost_per_iteration is not None:
            cost = rollup.estimated_cost_per_iteration
            line += (f"; estimated {cost:.0f} cost-rows/iteration vs "
                     f"measured {rollup.median_seconds * 1000:.2f}ms"
                     f"/iteration")
        lines.append(line)
    return lines


def render_profile(trace: dict, top: int = 10) -> str:
    """The ``repro-profile`` text report for one trace dict."""
    profile = aggregate_profile(trace)
    lines = []
    if profile.sql:
        first = profile.sql.strip().splitlines()[0]
        lines.append(f"sql: {first}")
    lines.append(f"total: {profile.total_seconds * 1000:.2f}ms "
                 f"across {len(profile.entries)} distinct stacks")
    entries = [entry for entry in profile.top(top) if entry.inclusive > 0]
    if entries:
        lines.append(f"top {len(entries)} hot frames (by exclusive "
                     f"time):")
        width = max(len(entry.frame) for entry in entries)
        for entry in entries:
            share = (entry.exclusive / profile.total_seconds
                     if profile.total_seconds else 0.0)
            lines.append(
                f"  {entry.frame:<{width}}  "
                f"excl {entry.exclusive * 1000:>9.2f}ms ({share:>5.1%})"
                f"  incl {entry.inclusive * 1000:>9.2f}ms"
                f"  x{entry.count}"
                f"  {' > '.join(entry.stack[1:-1]) or '-'}")
    for rollup in profile.loops:
        lines.extend(_render_loop(rollup))
    lines.extend(render_decision_timeline(profile.decisions))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _load_trace(path: str) -> dict:
    if path == "-":
        return json.load(sys.stdin)
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-profile",
        description="Aggregate a trace JSON (Database.trace_json()) "
                    "into a hot-stack profile, loop cost rollups, and "
                    "the runtime decision timeline.")
    parser.add_argument("trace",
                        help="path to a trace JSON file, or - for stdin")
    parser.add_argument("--top", type=int, default=10,
                        help="number of hot frames to show (default 10)")
    parser.add_argument("--collapsed", metavar="FILE",
                        help="also write collapsed-stack output "
                             "(flamegraph/speedscope format) to FILE, "
                             "or - for stdout")
    parser.add_argument("--no-validate", action="store_true",
                        help="skip trace schema validation")
    args = parser.parse_args(argv)

    try:
        trace = _load_trace(args.trace)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"repro-profile: cannot read {args.trace}: {exc}",
              file=sys.stderr)
        return 2
    if not args.no_validate:
        try:
            validate_trace_dict(trace)
        except ValueError as exc:
            print(f"repro-profile: {exc}", file=sys.stderr)
            return 2

    if args.collapsed is not None:
        folded = "\n".join(collapsed_stacks(trace))
        if args.collapsed == "-":
            print(folded)
        else:
            with open(args.collapsed, "w", encoding="utf-8") as handle:
                handle.write(folded + "\n")
    if args.collapsed != "-":
        print(render_profile(trace, top=args.top))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
