"""The perf-regression ledger: an append-only JSONL history of runs.

``BENCH_*.json`` artifacts are one-shot snapshots; the ledger is the
trajectory.  Every benchmark that goes through
:func:`repro.harness.write_bench_artifact` appends one :class:`RunRecord`
per measurement, and the ``repro-perf`` gate (see
:mod:`repro.harness.perfgate`) appends its own baseline/check records —
so one growable JSONL file holds performance over time, attributable to
a git sha and a host fingerprint.

Records are self-describing JSON objects, one per line, with a
``schema_version``; unknown versions are skipped on read (forward
compatibility), malformed lines raise.  The regression test is
noise-aware: a fresh run regresses only when its median exceeds the
baseline median by more than ``k`` median-absolute-deviations (with a
relative floor, so a zero-MAD baseline from quantized timers does not
make the gate hair-triggered).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

LEDGER_SCHEMA_VERSION = 1
DEFAULT_LEDGER_NAME = "PERF_LEDGER.jsonl"

# Record kinds: how the record entered the ledger.
#   bench     appended by write_bench_artifact alongside a BENCH_*.json
#   baseline  recorded explicitly by `repro-perf record` (gate reference)
#   check     one `repro-perf check` run, with its verdict
RECORD_KINDS = ("bench", "baseline", "check")


def mad(samples: Iterable[float]) -> float:
    """Median absolute deviation — the robust spread estimator the gate
    thresholds on (stdev would let one outlier widen the gate)."""
    values = list(samples)
    if len(values) < 2:
        return 0.0
    center = statistics.median(values)
    return statistics.median(abs(value - center) for value in values)


def host_fingerprint() -> dict:
    """Stable identity of the measuring host: medians are only
    comparable within one fingerprint."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
    }


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The current commit (short), or None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=5, cwd=cwd)
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def options_hash(options: Optional[dict]) -> str:
    """Deterministic short hash of the option/parameter mapping that
    shaped a run — two records compare only when these match."""
    canonical = json.dumps(options or {}, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


@dataclass
class RunRecord:
    """One timed run of one workload, as it lands in the ledger."""

    benchmark: str
    label: str
    median_seconds: float
    mad_seconds: float
    repeats: int
    all_seconds: list[float]
    options_hash: str
    host: dict
    git_sha: Optional[str]
    created_unix: float
    kind: str = "bench"
    verdict: Optional[str] = None  # "ok" | "regressed" for checks
    schema_version: int = LEDGER_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "benchmark": self.benchmark,
            "label": self.label,
            "median_seconds": self.median_seconds,
            "mad_seconds": self.mad_seconds,
            "repeats": self.repeats,
            "all_seconds": list(self.all_seconds),
            "options_hash": self.options_hash,
            "host": dict(self.host),
            "git_sha": self.git_sha,
            "created_unix": self.created_unix,
            "verdict": self.verdict,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        return cls(
            benchmark=data["benchmark"],
            label=data["label"],
            median_seconds=float(data["median_seconds"]),
            mad_seconds=float(data["mad_seconds"]),
            repeats=int(data["repeats"]),
            all_seconds=[float(s) for s in data["all_seconds"]],
            options_hash=data["options_hash"],
            host=dict(data["host"]),
            git_sha=data.get("git_sha"),
            created_unix=float(data["created_unix"]),
            kind=data.get("kind", "bench"),
            verdict=data.get("verdict"),
            schema_version=int(data["schema_version"]),
        )


_RECORD_KEYS = frozenset(RunRecord(
    "", "", 0.0, 0.0, 0, [], "", {}, None, 0.0).to_dict())


def validate_record_dict(data: dict) -> None:
    """Raise ``ValueError`` unless ``data`` is a well-formed record."""
    if not isinstance(data, dict):
        raise ValueError("ledger record is not an object")
    if set(data) != _RECORD_KEYS:
        raise ValueError(
            f"ledger record keys {sorted(data)} != "
            f"{sorted(_RECORD_KEYS)}")
    if data["kind"] not in RECORD_KINDS:
        raise ValueError(f"ledger record kind {data['kind']!r} not in "
                         f"{RECORD_KINDS}")
    for key in ("median_seconds", "mad_seconds", "created_unix"):
        if not isinstance(data[key], (int, float)):
            raise ValueError(f"ledger record {key} is not a number")
    if not isinstance(data["all_seconds"], list):
        raise ValueError("ledger record all_seconds is not a list")
    if not isinstance(data["host"], dict):
        raise ValueError("ledger record host is not an object")


def record_from_samples(benchmark: str, label: str,
                        samples: Iterable[float],
                        options: Optional[dict] = None,
                        kind: str = "bench",
                        host: Optional[dict] = None,
                        sha: Optional[str] = None) -> RunRecord:
    """Build a record from raw timing samples (seconds)."""
    values = [float(s) for s in samples]
    return RunRecord(
        benchmark=benchmark,
        label=label,
        median_seconds=statistics.median(values) if values else 0.0,
        mad_seconds=mad(values),
        repeats=len(values),
        all_seconds=values,
        options_hash=options_hash(options),
        host=host if host is not None else host_fingerprint(),
        git_sha=sha if sha is not None else git_sha(),
        created_unix=time.time(),
        kind=kind,
    )


# ---------------------------------------------------------------------------
# Ledger I/O
# ---------------------------------------------------------------------------


def append_records(records: Iterable[RunRecord], path: str) -> int:
    """Append records to the JSONL ledger (created on first write);
    returns how many were written."""
    count = 0
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(),
                                    sort_keys=True) + "\n")
            count += 1
    return count


def read_ledger(path: str) -> list[RunRecord]:
    """All readable records in append order.  Records from other schema
    versions are skipped (the ledger outlives any one schema); malformed
    lines raise — an append-only file should never contain them."""
    if not os.path.exists(path):
        return []
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{number}: malformed ledger line") from exc
            if data.get("schema_version") != LEDGER_SCHEMA_VERSION:
                continue
            records.append(RunRecord.from_dict(data))
    return records


def latest_baseline(records: Iterable[RunRecord], benchmark: str,
                    label: str, options: Optional[str] = None,
                    host: Optional[dict] = None,
                    kinds: tuple[str, ...] = ("baseline",)
                    ) -> Optional[RunRecord]:
    """The most recent record matching workload identity.

    ``options`` is an options hash; ``host`` a fingerprint dict —
    pass None to skip either dimension of the match (e.g. cross-host
    comparison, explicitly requested)."""
    found = None
    for record in records:
        if record.kind not in kinds:
            continue
        if record.benchmark != benchmark or record.label != label:
            continue
        if options is not None and record.options_hash != options:
            continue
        if host is not None and record.host != host:
            continue
        found = record
    return found


# ---------------------------------------------------------------------------
# Regression check
# ---------------------------------------------------------------------------


@dataclass
class CheckResult:
    """Verdict of one fresh-vs-baseline comparison."""

    benchmark: str
    label: str
    baseline_median: float
    fresh_median: float
    threshold: float
    regressed: bool
    k: float
    spread: float = 0.0
    notes: list[str] = field(default_factory=list)

    @property
    def ratio(self) -> float:
        if self.baseline_median <= 0:
            return float("inf") if self.fresh_median > 0 else 1.0
        return self.fresh_median / self.baseline_median

    def describe(self) -> str:
        verdict = "REGRESSED" if self.regressed else "ok"
        line = (f"{self.benchmark}/{self.label}: {verdict} — baseline "
                f"{self.baseline_median * 1000:.2f}ms, fresh "
                f"{self.fresh_median * 1000:.2f}ms ({self.ratio:.2f}x), "
                f"gate at {self.threshold * 1000:.2f}ms "
                f"(median + {self.k:g}*MAD, MAD="
                f"{self.spread * 1000:.3f}ms)")
        for note in self.notes:
            line += f"\n  note: {note}"
        return line


def check_regression(baseline: RunRecord, fresh: RunRecord,
                     k: float = 4.0,
                     min_rel_spread: float = 0.05) -> CheckResult:
    """Noise-aware regression verdict: fresh regresses iff its median
    exceeds ``baseline.median + k * spread`` where ``spread`` is the
    baseline MAD floored at ``min_rel_spread`` of the median (a
    perfectly quiet baseline still tolerates small noise)."""
    spread = max(baseline.mad_seconds,
                 min_rel_spread * baseline.median_seconds)
    threshold = baseline.median_seconds + k * spread
    result = CheckResult(
        benchmark=fresh.benchmark,
        label=fresh.label,
        baseline_median=baseline.median_seconds,
        fresh_median=fresh.median_seconds,
        threshold=threshold,
        regressed=fresh.median_seconds > threshold,
        k=k,
        spread=spread,
    )
    if baseline.host != fresh.host:
        result.notes.append(
            "host fingerprints differ — medians may not be comparable")
    if baseline.options_hash != fresh.options_hash:
        result.notes.append("options hashes differ")
    return result
