"""Observability subsystem: span tracing, metrics, loop telemetry,
and stable JSON export (see DESIGN.md § Observability).

The pieces compose as: the engine threads a :class:`Tracer` (or the
no-op :data:`NULL_TRACER`) through parse → plan → rewrite → execute,
loops publish :class:`LoopTelemetry`, and :func:`build_trace` freezes
both plus a metrics snapshot into a :class:`Trace` whose JSON schema is
validated by :func:`validate_trace_dict`.
"""

from .export import (
    BENCH_SCHEMA_VERSION,
    DECISION_EVENT_NAMES,
    TRACE_SCHEMA_VERSION,
    Trace,
    build_trace,
    validate_bench_dict,
    validate_trace_dict,
)
from .ledger import (
    LEDGER_SCHEMA_VERSION,
    CheckResult,
    RunRecord,
    append_records,
    check_regression,
    latest_baseline,
    read_ledger,
    record_from_samples,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import (
    Profile,
    aggregate_profile,
    collapsed_stacks,
    render_decision_timeline,
    render_profile,
)
from .telemetry import (
    ITERATION_RECORD_KEYS,
    IterationRecord,
    LoopTelemetry,
    render_iteration_table,
)
from .trace import (
    NULL_TRACER,
    ContextTracer,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    render_span_tree,
    span_from_dict,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DECISION_EVENT_NAMES",
    "TRACE_SCHEMA_VERSION",
    "Trace",
    "build_trace",
    "validate_bench_dict",
    "validate_trace_dict",
    "LEDGER_SCHEMA_VERSION",
    "CheckResult",
    "RunRecord",
    "append_records",
    "check_regression",
    "latest_baseline",
    "read_ledger",
    "record_from_samples",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profile",
    "aggregate_profile",
    "collapsed_stacks",
    "render_decision_timeline",
    "render_profile",
    "ITERATION_RECORD_KEYS",
    "IterationRecord",
    "LoopTelemetry",
    "render_iteration_table",
    "NULL_TRACER",
    "ContextTracer",
    "NullTracer",
    "Span",
    "TraceContext",
    "Tracer",
    "render_span_tree",
    "span_from_dict",
]
