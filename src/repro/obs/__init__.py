"""Observability subsystem: span tracing, metrics, loop telemetry,
and stable JSON export (see DESIGN.md § Observability).

The pieces compose as: the engine threads a :class:`Tracer` (or the
no-op :data:`NULL_TRACER`) through parse → plan → rewrite → execute,
loops publish :class:`LoopTelemetry`, and :func:`build_trace` freezes
both plus a metrics snapshot into a :class:`Trace` whose JSON schema is
validated by :func:`validate_trace_dict`.
"""

from .export import (
    BENCH_SCHEMA_VERSION,
    TRACE_SCHEMA_VERSION,
    Trace,
    build_trace,
    validate_bench_dict,
    validate_trace_dict,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .telemetry import (
    ITERATION_RECORD_KEYS,
    IterationRecord,
    LoopTelemetry,
    render_iteration_table,
)
from .trace import NULL_TRACER, NullTracer, Span, Tracer, render_span_tree

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "Trace",
    "build_trace",
    "validate_bench_dict",
    "validate_trace_dict",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ITERATION_RECORD_KEYS",
    "IterationRecord",
    "LoopTelemetry",
    "render_iteration_table",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "render_span_tree",
]
