"""Step programs: the execution-plan form of iterative queries.

The paper's planner rewrites an iterative CTE into a *single plan* that is
a sequence of steps with a conditional backward jump (Table I).  This
module defines that representation: a list of :class:`Step` objects run by
a program counter, where the ``loop`` step may jump backwards and every
other step advances by one.

Steps hold logical plans (materializations) or registry manipulations
(rename / snapshot / drop).  The executor for programs lives in
:mod:`repro.runtime`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sql import ast
from .logical import LogicalOp, plan_to_text


class Step:
    """One step of a plan program."""

    def describe(self) -> str:  # pragma: no cover - overridden
        return type(self).__name__


@dataclass
class MaterializeStep(Step):
    """Execute a plan and store its result in the registry.

    This is the workhorse: the non-iterative part, the iterative part, the
    merge of Algorithm 1 line 8, and common-result blocks are all
    materializations.
    """

    result_name: str
    plan: LogicalOp
    column_names: list[str]
    comment: str = ""

    def describe(self) -> str:
        suffix = f" — {self.comment}" if self.comment else ""
        return f"Materialize {self.result_name}{suffix}"


@dataclass
class RenameStep(Step):
    """The paper's new *rename* operator (§VI-A): O(1) registry relabel."""

    source: str
    target: str

    def describe(self) -> str:
        return f"Rename {self.source} to {self.target}"


@dataclass
class CopyStep(Step):
    """Baseline data movement: physically copy a result to another name.

    Used (instead of rename) when the rename optimization is disabled, to
    model the data movement the paper's Fig. 8 baseline performs.
    """

    source: str
    target: str

    def describe(self) -> str:
        return f"Copy {self.source} into {self.target}"


@dataclass
class SnapshotStep(Step):
    """Retain a reference copy of a result under another name.

    Columns are immutable, so this is O(1); it gives the DELTA/UPDATES
    termination conditions the previous iteration to compare against.
    """

    source: str
    target: str

    def describe(self) -> str:
        return f"Snapshot {self.source} as {self.target}"


@dataclass
class DuplicateCheckStep(Step):
    """Raise DuplicateKeyError if a result has duplicate key values (§II)."""

    result_name: str
    key_column: str

    def describe(self) -> str:
        return (f"Check {self.result_name} has unique "
                f"{self.key_column} values")


@dataclass
class CountUpdatesStep(Step):
    """Count rows of ``current`` that differ from ``previous`` (by key).

    Feeds the loop operator's updates/delta bookkeeping.
    """

    previous: str
    current: str
    key_column: str
    loop_id: int

    def describe(self) -> str:
        return (f"Count updated rows of {self.current} "
                f"vs {self.previous}")


@dataclass
class LoopSpec:
    """Static description of one loop: the paper's loop-operator payload.

    Captures the three pieces of §IV: the termination type, N, and the SQL
    expression for data/delta conditions.  Recursive CTEs reuse the same
    loop operator with fixed-point semantics: ``until_empty`` names the
    working table whose emptiness stops the loop.
    """

    loop_id: int
    termination: Optional[ast.Termination]
    cte_result: str
    cte_name: str
    # Declared CTE columns, for binding data-condition expressions.
    columns: list[str]
    # Fixed-point loops (recursive CTEs): continue while this result has
    # rows; ``termination`` is None in that case.
    until_empty: Optional[str] = None
    # How the full body moves the working table back onto the CTE name:
    # "rename" (O(1) relabel) or "copy" (physical move, the Fig. 8
    # baseline).  Drives run-time strategy selection.
    movement: str = "rename"
    # The loop's semi-naive delta rewrite, when the safety analyzer
    # proved one; None keeps the loop on its full-body strategy.
    delta: Optional[DeltaSpec] = None
    # Whether the iterative part carries a WHERE clause.  A WHERE body
    # updates a subset of rows, so the working table must be merged into
    # the main table before any rename/copy — the verifier uses this to
    # reject rename-in-place programs that bypass the merge.
    has_where: bool = False

    def annotation(self) -> str:
        if self.termination is None:
            return f"<<Type:fixpoint, Until:{self.until_empty} empty>>"
        return self.termination.describe()


@dataclass
class InitLoopStep(Step):
    """Initialize the loop counter (Table I step 2)."""

    spec: LoopSpec

    def describe(self) -> str:
        return f"Initialize counter to zero."


@dataclass
class IncrementLoopStep(Step):
    """Increment the loop counter (Table I step 5)."""

    loop_id: int

    def describe(self) -> str:
        return "Increment counter by 1."


@dataclass
class LoopStep(Step):
    """The paper's new *loop* operator (§VI-B): conditional backward jump.

    Holds two execution pointers — the next iteration (``jump_to``) and
    fall-through — and a single ``continue`` decision computed from the
    loop spec.
    """

    loop_id: int
    jump_to: int

    def describe(self) -> str:
        return f"Go to step {self.jump_to + 1} if loop continues."


@dataclass
class RecursiveMergeStep(Step):
    """Fixed-point bookkeeping for recursive CTEs.

    Appends ``candidate`` rows to ``result`` and stores the genuinely new
    rows (under UNION semantics: rows not already in ``result``) as
    ``working`` — the input of the next recursive step.  With
    ``distinct=False`` (UNION ALL) every candidate row is both appended
    and carried forward.
    """

    result: str
    candidate: str
    working: str
    distinct: bool

    def describe(self) -> str:
        mode = "UNION" if self.distinct else "UNION ALL"
        return (f"Merge {self.candidate} into {self.result} ({mode}); "
                f"new rows become {self.working}")


@dataclass
class DeltaSpec:
    """Static description of a loop's semi-naive delta rewrite.

    Emitted only when the safety analyzer (:mod:`repro.rewrite.delta`)
    proves the step query evolves each key independently — the per-key
    property behind Fig. 10 predicate pushdown.  ``influences`` lists the
    equi-join links (cte ref, base table, src column, dst column) used to
    expand the changed-row frontier into the affected key set.
    """

    loop_id: int
    cte_name: str
    cte_result: str
    working: str
    # Registry name the affected partition of the CTE table is stored
    # under; the delta step plan's anchor scan is rebound to it.
    partition: str
    # Registry name the recomputed partition rows are stored under.
    delta_working: str
    key_column: str
    columns: list[str]
    # True when the original loop body merges the working table back by
    # key (WHERE present); False for the whole-table rename/copy body.
    merge_by_key: bool
    # (base table, frontier-side column, affected-side column) per link.
    influences: list[tuple[str, str, str]] = field(default_factory=list)
    # INNER-join body without a WHERE clause: delta apply must verify the
    # recomputed partition reproduced its keyset exactly (an inner join
    # can drop keys, which a keyed scatter cannot express) and fall back
    # to the full body when it did not.
    guard_keyset: bool = False


@dataclass
class DeltaGateStep(Step):
    """Route one iteration down the delta or the full path.

    Falls through into the delta block when the runtime is active and the
    frontier is non-empty; jumps to ``jump_full`` (the original loop body)
    when delta state is missing or invalid; jumps to ``jump_done`` (past
    both bodies) when the frontier is empty — nothing can change, so the
    iteration costs O(1).  Jump targets are patched after emission.
    """

    spec: DeltaSpec
    jump_full: int = -1
    jump_done: int = -1

    def describe(self) -> str:
        return (f"Delta gate for {self.spec.cte_name}: full body at step "
                f"{self.jump_full + 1}, empty frontier to step "
                f"{self.jump_done + 1}.")


@dataclass
class DeltaPartitionStep(Step):
    """Materialize the affected partition of the CTE table.

    Expands the frontier through the spec's influence links and gathers
    the affected rows into the partition result the delta step plan scans.
    """

    spec: DeltaSpec

    def describe(self) -> str:
        return (f"Partition {self.spec.cte_result} to rows affected by "
                f"the frontier as {self.spec.partition}")


@dataclass
class DeltaApplyStep(Step):
    """Merge the recomputed partition back into the CTE table.

    Scatters the delta-working rows over their key positions, derives the
    next frontier from IS DISTINCT FROM change detection, and jumps to
    ``jump_to`` (the loop increment), skipping the full body.  When the
    spec's keyset guard trips, jumps forward to ``jump_full`` (the full
    body) instead, so the iteration reruns correctly.
    """

    spec: DeltaSpec
    jump_to: int = -1
    jump_full: int = -1

    def describe(self) -> str:
        return (f"Apply {self.spec.delta_working} to "
                f"{self.spec.cte_result}; go to step {self.jump_to + 1}.")


@dataclass
class DeltaFusedStep(Step):
    """The fused semi-naive delta pass: gate, partition, recompute and
    apply in one batched columnar step.

    One dispatch replaces the quartet's gate/partition/materialize/apply
    chain (plus the delta-working duplicate check when ``dup_check``),
    keeping intermediate code arrays and positions in registers across
    the phases.  Control flow matches the gate/apply pair: jumps to
    ``jump_full`` (the original loop body) when delta state is missing,
    invalid, or the keyset guard trips; jumps to ``jump_done`` (past both
    bodies) on an empty frontier; jumps to ``jump_to`` (the loop
    increment) after a successful delta iteration.  It never falls
    through.  Jump targets are patched after emission.
    """

    spec: DeltaSpec
    plan: LogicalOp
    column_names: list[str]
    dup_check: bool
    jump_to: int = -1
    jump_full: int = -1
    jump_done: int = -1

    def describe(self) -> str:
        return (f"Fused delta pass for {self.spec.cte_name}: full body at "
                f"step {self.jump_full + 1}, done to step "
                f"{self.jump_done + 1}, applied to step "
                f"{self.jump_to + 1}.")


@dataclass
class DeltaCaptureStep(Step):
    """Capture delta state after a full iteration of the loop body.

    Validates the key column (unique, non-NULL), snapshots the CTE table's
    columns, and computes the initial frontier against ``previous`` so the
    next iteration can take the delta path.
    """

    spec: DeltaSpec
    previous: str

    def describe(self) -> str:
        return (f"Capture delta frontier of {self.spec.cte_result} "
                f"vs {self.previous}")


@dataclass
class ReturnStep(Step):
    """Evaluate the final query and return its result."""

    plan: LogicalOp

    def describe(self) -> str:
        return "Return final query result."


@dataclass
class DropStep(Step):
    """Release intermediate results."""

    names: list[str]

    def describe(self) -> str:
        return f"Drop {', '.join(self.names)}"


@dataclass
class Program:
    """A full plan program for one statement."""

    steps: list[Step]
    loops: dict[int, LoopSpec] = field(default_factory=dict)
    # Verdict string set by the IR verifier when ``enable_plan_verifier``
    # is on (e.g. "ok (41 checks over 12 steps)"); surfaces in EXPLAIN
    # and in the compile span of traced runs.
    verifier_verdict: Optional[str] = None

    def explain(self, verbose: bool = False) -> str:
        """Render the program in the numbered-step style of Table I."""
        lines = []
        for i, step in enumerate(self.steps):
            lines.append(f"{i + 1:>3}  {step.describe()}")
            if isinstance(step, LoopStep):
                spec = self.loops[step.loop_id]
                lines.append(f"     loop {spec.annotation()}")
            if verbose and isinstance(step, (MaterializeStep, ReturnStep)):
                plan_text = plan_to_text(step.plan, indent=3)
                lines.append(plan_text)
        if self.verifier_verdict is not None:
            lines.append(f"verifier: {self.verifier_verdict}")
        return "\n".join(lines)
