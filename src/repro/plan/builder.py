"""AST → logical plan builder (binder + planner front half).

The builder resolves names against the catalog and CTE scope, expands
``*``, decomposes aggregate queries into key/aggregate/output form, and
produces the logical operator tree the rewrite subsystem optimizes.

Iterative and recursive CTEs are *not* handled here — they are functional
rewrites producing step programs (see :mod:`repro.core.rewrite`).  The
builder only sees their already-materialized results through
``cte_bindings`` (name → result fields), plus regular CTEs which it expands
inline exactly like view references (the paper lists view expansion as the
archetypal functional rewrite).
"""

from __future__ import annotations

import itertools
from dataclasses import replace as dataclass_replace
from dataclasses import dataclass, field as dataclass_field
from typing import Optional, Sequence

from ..errors import BindError, PlanError
from ..sql import ast
from ..storage import Catalog
from ..types import SqlType, common_type
from .binding import infer_type, resolve_column
from .logical import (
    AggregateSpec,
    Field,
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalOp,
    LogicalProject,
    LogicalRename,
    LogicalScan,
    LogicalSemiJoin,
    LogicalSetDifference,
    LogicalSort,
    LogicalTempScan,
    LogicalUnion,
    LogicalValues,
)


@dataclass
class CteBinding:
    """A CTE whose result is (or will be) materialized in the registry."""

    result_name: str
    columns: tuple[tuple[str, SqlType], ...]  # declared output columns


@dataclass
class PlanContext:
    """Everything the builder needs to resolve names."""

    catalog: Catalog
    cte_bindings: dict[str, CteBinding] = dataclass_field(default_factory=dict)
    # name -> (body, declared column names or None)
    inline_ctes: dict[str, tuple[ast.SelectLike, Optional[list[str]]]] = \
        dataclass_field(default_factory=dict)
    _counter: itertools.count = dataclass_field(
        default_factory=lambda: itertools.count())
    # Span tracer for the statement being compiled (repro.obs.Tracer),
    # or None when the compile is untraced.
    tracer: Optional[object] = None

    def child(self) -> "PlanContext":
        """A nested scope sharing the catalog and name counter."""
        return PlanContext(self.catalog, dict(self.cte_bindings),
                           dict(self.inline_ctes), self._counter,
                           self.tracer)

    def fresh_name(self, prefix: str) -> str:
        return f"__{prefix}{next(self._counter)}"


def build_statement(query: ast.SelectLike, context: PlanContext) -> LogicalOp:
    """Build a SELECT or set-operation statement into a logical plan.

    The statement's WITH clause must contain only regular CTEs; iterative
    and recursive ones are peeled off by the engine before this is called.
    """
    tracer = context.tracer
    if tracer is None or not tracer.enabled:
        context = _absorb_with_clause(query, context)
        return _build_query(query, context, qualifier=None)
    with tracer.span("plan", kind="phase",
                     statement=type(query).__name__) as span:
        context = _absorb_with_clause(query, context)
        plan = _build_query(query, context, qualifier=None)
        span.set(operator=type(plan).__name__, fields=len(plan.fields))
    return plan


def _absorb_with_clause(query: ast.SelectLike,
                        context: PlanContext) -> PlanContext:
    if query.with_clause is None:
        return context
    context = context.child()
    for cte in query.with_clause.ctes:
        if isinstance(cte, ast.IterativeCte):
            raise PlanError(
                "iterative CTE reached the plain builder; the engine must "
                "rewrite it first")
        if cte.recursive:
            raise PlanError(
                "recursive CTE reached the plain builder; the engine must "
                "rewrite it first")
        context.inline_ctes[cte.name.lower()] = (cte.query, cte.columns)
    return context


# ---------------------------------------------------------------------------
# Query level
# ---------------------------------------------------------------------------


def _build_query(query: ast.SelectLike, context: PlanContext,
                 qualifier: Optional[str],
                 rename_to: Optional[Sequence[str]] = None) -> LogicalOp:
    if isinstance(query, ast.SetOp):
        plan = _build_setop(query, context, qualifier)
    else:
        plan = _build_select(query, context, qualifier)
    if rename_to is not None:
        plan = rename_outputs(plan, rename_to, qualifier)
    if query.order_by:
        plan = _attach_order_by(plan, query.order_by)
    if query.limit is not None or query.offset is not None:
        plan = LogicalLimit(plan, query.limit, query.offset or 0)
    return plan


def _binds_in(expr: ast.Expr, fields: tuple[Field, ...]) -> bool:
    try:
        _bind_expression(expr, fields)
        return True
    except BindError:
        return False


def _attach_order_by(plan: LogicalOp,
                     order_by: Sequence[ast.OrderItem]) -> LogicalOp:
    """Plan the ORDER BY clause.

    Keys normally bind against the output columns (aliases included).  SQL
    also allows ordering by *input* columns not present in the output
    (``SELECT name FROM t ORDER BY age``) and by expressions over the
    GROUP BY keys; those are carried through as hidden columns and dropped
    after the sort.
    """
    if all(_binds_in(item.expr, plan.fields) for item in order_by):
        keys = tuple((item.expr, item.ascending) for item in order_by)
        return LogicalSort(plan, keys)
    if isinstance(plan, LogicalProject):
        return _order_by_through_project(plan, order_by)
    if isinstance(plan, LogicalAggregate):
        return _order_by_through_aggregate(plan, order_by)
    for item in order_by:  # re-raise the binding error
        _bind_expression(item.expr, plan.fields)
    raise BindError("unresolvable ORDER BY")  # pragma: no cover


def _order_by_through_project(project: LogicalProject,
                              order_by: Sequence[ast.OrderItem]
                              ) -> LogicalOp:
    """Sort with keys over output aliases and/or the projection's input."""
    from ..rewrite.expr_utils import map_column_refs

    child = project.child
    body_exprs = [(expr, f"__c{i}")
                  for i, (expr, _name) in enumerate(project.exprs)]
    body_fields = [Field(None, f"__c{i}", f.sql_type)
                   for i, f in enumerate(project.fields)]
    hidden: list[tuple[ast.Expr, str, Field]] = []
    keys: list[tuple[ast.Expr, bool]] = []

    for item in order_by:
        if _binds_in(item.expr, project.fields):
            def to_slot(ref: ast.ColumnRef) -> ast.Expr:
                index = resolve_column(project.fields, ref)
                return ast.ColumnRef(f"__c{index}")
            keys.append((map_column_refs(item.expr, to_slot),
                         item.ascending))
            continue
        if _binds_in(item.expr, child.fields):
            slot = f"__o{len(hidden)}"
            field = Field(None, slot, infer_type(item.expr, child.fields))
            hidden.append((item.expr, slot, field))
            keys.append((ast.ColumnRef(slot), item.ascending))
            continue
        _bind_expression(item.expr, child.fields)  # raises BindError

    widened = LogicalProject(
        child,
        tuple(body_exprs + [(expr, slot) for expr, slot, _ in hidden]),
        None,
        tuple(body_fields + [field for _, _, field in hidden]))
    sorted_plan = LogicalSort(widened, tuple(keys))
    final_exprs = tuple((ast.ColumnRef(f"__c{i}"), f.name)
                        for i, f in enumerate(project.fields))
    return LogicalProject(sorted_plan, final_exprs, project.qualifier,
                          project.fields)


def _order_by_through_aggregate(agg: LogicalAggregate,
                                order_by: Sequence[ast.OrderItem]
                                ) -> LogicalOp:
    """Sort an aggregate by expressions over its GROUP BY keys."""
    extra: list[tuple[ast.Expr, str, Field]] = []
    keys: list[tuple[ast.Expr, bool]] = []

    for item in order_by:
        if _binds_in(item.expr, agg.fields):
            keys.append((item.expr, item.ascending))
            continue
        rewritten = _rewrite_over_aggregate_slots(item.expr, agg)
        if rewritten is None:
            _bind_expression(item.expr, agg.fields)  # raises BindError
            raise BindError("unresolvable ORDER BY")  # pragma: no cover
        slot = f"__order{len(extra)}"
        field = Field(None, slot, infer_type(item.expr, agg.child.fields))
        extra.append((rewritten, slot, field))
        keys.append((ast.ColumnRef(slot), item.ascending))

    if not extra:
        return LogicalSort(agg, tuple(keys))
    widened = dataclass_replace(
        agg,
        outputs=agg.outputs + tuple((expr, slot)
                                    for expr, slot, _ in extra),
        fields=agg.fields + tuple(field for _, _, field in extra))
    sorted_plan = LogicalSort(widened, tuple(keys))
    final_exprs = tuple((ast.ColumnRef(f.name, f.qualifier), f.name)
                        for f in agg.fields)
    return LogicalProject(sorted_plan, final_exprs, agg.qualifier,
                          agg.fields)


def _rewrite_over_aggregate_slots(expr: ast.Expr, agg: LogicalAggregate
                                  ) -> Optional[ast.Expr]:
    """Rewrite an expression onto the aggregate's key/agg slots; None when
    it references anything not derivable from them."""

    def attempt(node: ast.Expr) -> ast.Expr:
        for key_expr, slot in agg.keys:
            if node == key_expr:
                return ast.ColumnRef(slot)
        if ast.is_aggregate_call(node):
            for spec in agg.aggregates:
                if spec.call == node:
                    return ast.ColumnRef(spec.name)
            return node  # unknown aggregate: validation below rejects it
        return _rebuild(node, attempt)

    rewritten = attempt(expr)
    slot_names = {slot for _, slot in agg.keys} \
        | {spec.name for spec in agg.aggregates}
    for node in rewritten.walk():
        if ast.is_aggregate_call(node):
            return None
        if isinstance(node, ast.ColumnRef) and node.name not in slot_names:
            return None
    return rewritten


def rename_outputs(plan: LogicalOp, names: Sequence[str],
                   qualifier: Optional[str]) -> LogicalOp:
    """Relabel a plan's output columns positionally."""
    if len(names) != len(plan.fields):
        raise PlanError(
            f"expected {len(plan.fields)} column names, got {len(names)}")
    fields = tuple(Field(qualifier, new.lower(), f.sql_type)
                   for f, new in zip(plan.fields, names))
    return LogicalRename(plan, fields)


def _build_setop(query: ast.SetOp, context: PlanContext,
                 qualifier: Optional[str]) -> LogicalOp:
    left = _build_query(query.left, context, qualifier=None)
    right = _build_query(query.right, context, qualifier=None)
    if len(left.fields) != len(right.fields):
        raise PlanError(
            f"{query.kind.value} arms have different column counts")
    fields = tuple(
        Field(qualifier, lf.name,
              common_type(lf.sql_type, rf.sql_type))
        for lf, rf in zip(left.fields, right.fields))
    if query.kind in (ast.SetOpKind.UNION, ast.SetOpKind.UNION_ALL):
        return LogicalUnion(left, right,
                            all=query.kind is ast.SetOpKind.UNION_ALL,
                            fields=fields)
    return LogicalSetDifference(
        left, right,
        intersect=query.kind is ast.SetOpKind.INTERSECT,
        fields=fields)


# ---------------------------------------------------------------------------
# SELECT core
# ---------------------------------------------------------------------------


def _build_select(select: ast.Select, context: PlanContext,
                  qualifier: Optional[str]) -> LogicalOp:
    context = _absorb_with_clause(select, context)

    if select.from_clause is not None:
        plan = build_relation(select.from_clause, context)
    else:
        plan = LogicalValues(rows=((),), fields=())

    if select.where is not None:
        if ast.contains_aggregate(select.where):
            raise BindError("aggregate functions are not allowed in WHERE")
        plan = _apply_where(plan, select.where, context)

    items = _expand_stars(select.items, plan.fields)
    has_aggregates = (bool(select.group_by)
                      or any(ast.contains_aggregate(item.expr)
                             for item in items)
                      or (select.having is not None))

    if has_aggregates:
        plan = _build_aggregate(plan, select, items, qualifier)
    else:
        exprs = []
        fields = []
        for i, item in enumerate(items):
            name = _output_name(item, i)
            _bind_expression(item.expr, plan.fields)
            exprs.append((item.expr, name))
            fields.append(Field(qualifier, name,
                                infer_type(item.expr, plan.fields)))
        plan = LogicalProject(plan, tuple(exprs), qualifier, tuple(fields))

    if select.distinct:
        plan = LogicalDistinct(plan)
    return plan


# ---------------------------------------------------------------------------
# WHERE planning: filters plus subquery-predicate decorrelation
# ---------------------------------------------------------------------------


def _split_where_conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op is ast.BinaryOperator.AND:
        return (_split_where_conjuncts(expr.left)
                + _split_where_conjuncts(expr.right))
    return [expr]


def _apply_where(plan: LogicalOp, where: ast.Expr,
                 context: PlanContext) -> LogicalOp:
    """Plan a WHERE clause: subquery predicates (EXISTS / IN-subquery)
    become semi/anti joins; everything else becomes an ordinary filter."""
    plain: list[ast.Expr] = []
    for conjunct in _split_where_conjuncts(where):
        # Normalize NOT over a subquery predicate.
        if isinstance(conjunct, ast.UnaryOp) \
                and conjunct.op is ast.UnaryOperator.NOT:
            inner = conjunct.operand
            if isinstance(inner, ast.ExistsExpr):
                conjunct = ast.ExistsExpr(inner.query, not inner.negated)
            elif isinstance(inner, ast.InSubquery):
                conjunct = ast.InSubquery(inner.operand, inner.query,
                                          not inner.negated)
        if isinstance(conjunct, ast.ExistsExpr):
            plan = _plan_exists(plan, conjunct, context)
        elif isinstance(conjunct, ast.InSubquery):
            plan = _plan_in_subquery(plan, conjunct, context)
        else:
            _reject_nested_subquery_predicates(conjunct)
            _bind_expression(conjunct, plan.fields)
            plain.append(conjunct)
    remainder = _conjoin_list(plain)
    if remainder is not None:
        plan = LogicalFilter(plan, remainder)
    return plan


def _conjoin_list(conjuncts: list[ast.Expr]) -> Optional[ast.Expr]:
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = ast.BinaryOp(ast.BinaryOperator.AND, result, conjunct)
    return result


def _reject_nested_subquery_predicates(expr: ast.Expr) -> None:
    for node in expr.walk():
        if isinstance(node, (ast.ExistsExpr, ast.InSubquery)):
            raise PlanError(
                "EXISTS/IN subqueries are only supported as top-level "
                "WHERE conjuncts (optionally under a single NOT)")


def _partition_subquery_where(sub: ast.Select, sub_rel: LogicalOp,
                              outer_fields: tuple[Field, ...]):
    """Split a correlated subquery's WHERE into local and correlated
    conjuncts.  Correlated ones must bind against outer+inner fields."""
    local: list[ast.Expr] = []
    correlated: list[ast.Expr] = []
    if sub.where is None:
        return local, correlated
    combined = (*outer_fields, *sub_rel.fields)
    for conjunct in _split_where_conjuncts(sub.where):
        _reject_nested_subquery_predicates(conjunct)
        if _binds_in(conjunct, sub_rel.fields):
            local.append(conjunct)
        else:
            _bind_expression(conjunct, combined)  # raises if unresolvable
            correlated.append(conjunct)
    return local, correlated


def _is_simple_select(sub: ast.SelectLike) -> bool:
    return (isinstance(sub, ast.Select)
            and not sub.group_by and sub.having is None
            and not sub.distinct and sub.limit is None
            and sub.offset is None and sub.with_clause is None
            and not any(ast.contains_aggregate(item.expr)
                        for item in sub.items))


def _plan_exists(plan: LogicalOp, expr: ast.ExistsExpr,
                 context: PlanContext) -> LogicalOp:
    sub = expr.query
    if not _is_simple_select(sub) or sub.from_clause is None:
        # Aggregated / set-op / FROM-less subqueries: only the
        # uncorrelated form is supported — build it standalone.
        sub_plan = _build_query(sub, context.child(), qualifier=None)
        return LogicalSemiJoin(plan, sub_plan, condition=None,
                               anti=expr.negated)
    sub_context = context.child()
    sub_rel = build_relation(sub.from_clause, sub_context)
    local, correlated = _partition_subquery_where(sub, sub_rel,
                                                  plan.fields)
    local_where = _conjoin_list(local)
    if local_where is not None:
        sub_rel = LogicalFilter(sub_rel, local_where)
    return LogicalSemiJoin(plan, sub_rel,
                           condition=_conjoin_list(correlated),
                           anti=expr.negated)


def _plan_in_subquery(plan: LogicalOp, expr: ast.InSubquery,
                      context: PlanContext) -> LogicalOp:
    _bind_expression(expr.operand, plan.fields)
    sub = expr.query
    alias = context.fresh_name("insub").strip("_")

    if not _is_simple_select(sub) or sub.from_clause is None:
        sub_plan = _build_query(sub, context.child(), qualifier=alias)
        if len(sub_plan.fields) != 1:
            raise PlanError("IN (subquery) requires exactly one column")
        sub_plan = rename_outputs(sub_plan, ["__inval"], alias)
        key_ref = ast.ColumnRef("__inval", alias)
        condition = ast.BinaryOp(ast.BinaryOperator.EQ, expr.operand,
                                 key_ref)
        return LogicalSemiJoin(plan, sub_plan, condition,
                               anti=expr.negated,
                               null_aware=expr.negated,
                               probe_expr=expr.operand, key_expr=key_ref)

    if len(sub.items) != 1 or isinstance(sub.items[0].expr, ast.Star):
        raise PlanError("IN (subquery) requires exactly one column")
    sub_context = context.child()
    sub_rel = build_relation(sub.from_clause, sub_context)
    local, correlated = _partition_subquery_where(sub, sub_rel,
                                                  plan.fields)
    local_where = _conjoin_list(local)
    if local_where is not None:
        sub_rel = LogicalFilter(sub_rel, local_where)
    value_expr = sub.items[0].expr
    _bind_expression(value_expr, sub_rel.fields)
    value_field = Field(alias, "__inval",
                        infer_type(value_expr, sub_rel.fields))
    sub_plan = LogicalProject(sub_rel, ((value_expr, "__inval"),),
                              alias, (value_field,))
    # Correlated conjuncts reference the subquery's FROM columns, which
    # the projection hides; carry them through as extra outputs.
    extra_exprs = []
    extra_fields = []
    rebased_correlated = []
    for i, conjunct in enumerate(correlated):
        rebased, refs = _rebase_through_projection(
            conjunct, sub_rel.fields, alias, len(extra_exprs))
        extra_exprs.extend(refs)
        extra_fields.extend(
            Field(alias, name, infer_type(original, sub_rel.fields))
            for original, name in refs)
        rebased_correlated.append(rebased)
    if extra_exprs:
        sub_plan = LogicalProject(
            sub_rel,
            ((value_expr, "__inval"),
             *[(original, name) for original, name in extra_exprs]),
            alias,
            (value_field, *extra_fields))
    key_ref = ast.ColumnRef("__inval", alias)
    condition = ast.BinaryOp(ast.BinaryOperator.EQ, expr.operand, key_ref)
    for conjunct in rebased_correlated:
        condition = ast.BinaryOp(ast.BinaryOperator.AND, condition,
                                 conjunct)
    return LogicalSemiJoin(plan, sub_plan, condition,
                           anti=expr.negated, null_aware=expr.negated,
                           probe_expr=expr.operand, key_expr=key_ref)


def _rebase_through_projection(conjunct: ast.Expr,
                               inner_fields: tuple[Field, ...],
                               alias: str, offset: int):
    """Rewrite a correlated conjunct so inner column references go through
    the projection: each distinct inner ref becomes an extra projected
    column ``__corrN``.  Returns (rewritten, [(original_ref, name)])."""
    from ..rewrite.expr_utils import map_column_refs

    carried: list[tuple[ast.Expr, str]] = []
    mapping_cache: dict[ast.ColumnRef, ast.ColumnRef] = {}

    def mapping(ref: ast.ColumnRef) -> ast.Expr:
        try:
            resolve_column(inner_fields, ref)
        except BindError:
            return ref  # outer reference: untouched
        if ref not in mapping_cache:
            name = f"__corr{offset + len(carried)}"
            carried.append((ref, name))
            mapping_cache[ref] = ast.ColumnRef(name, alias)
        return mapping_cache[ref]

    rewritten = map_column_refs(conjunct, mapping)
    return rewritten, carried


def _output_name(item: ast.SelectItem, index: int) -> str:
    if item.alias:
        return item.alias.lower()
    if isinstance(item.expr, ast.ColumnRef):
        return item.expr.name.lower()
    if isinstance(item.expr, ast.FunctionCall):
        return item.expr.name.lower()
    return f"col{index}"


def _expand_stars(items: Sequence[ast.SelectItem],
                  fields: tuple[Field, ...]) -> list[ast.SelectItem]:
    expanded: list[ast.SelectItem] = []
    for item in items:
        if isinstance(item.expr, ast.Star):
            table = item.expr.table
            matched = [f for f in fields
                       if table is None or f.qualifier == table.lower()]
            if table is not None and not matched:
                raise BindError(f"no table named {table!r} in scope")
            expanded.extend(
                ast.SelectItem(ast.ColumnRef(f.name, f.qualifier), f.name)
                for f in matched)
        else:
            expanded.append(item)
    return expanded


def _bind_expression(expr: ast.Expr, fields: tuple[Field, ...]) -> None:
    """Check every column reference in ``expr`` resolves."""
    for node in expr.walk():
        if isinstance(node, ast.ColumnRef):
            resolve_column(fields, node)


# ---------------------------------------------------------------------------
# Aggregation decomposition
# ---------------------------------------------------------------------------


def _build_aggregate(child: LogicalOp, select: ast.Select,
                     items: list[ast.SelectItem],
                     qualifier: Optional[str]) -> LogicalOp:
    keys: list[tuple[ast.Expr, str]] = []
    for i, expr in enumerate(select.group_by):
        if ast.contains_aggregate(expr):
            raise BindError("aggregate functions are not allowed in GROUP BY")
        _bind_expression(expr, child.fields)
        keys.append((expr, f"__key{i}"))

    aggregates: list[AggregateSpec] = []

    def agg_slot(call: ast.FunctionCall) -> str:
        for spec in aggregates:
            if spec.call == call:
                return spec.name
        for arg in call.args:
            if ast.contains_aggregate(arg):
                raise BindError("nested aggregate functions are not allowed")
            if not isinstance(arg, ast.Star):
                _bind_expression(arg, child.fields)
        name = f"__agg{len(aggregates)}"
        aggregates.append(AggregateSpec(call, name))
        return name

    def rewrite(expr: ast.Expr) -> ast.Expr:
        for key_expr, slot in keys:
            if expr == key_expr:
                return ast.ColumnRef(slot)
        if ast.is_aggregate_call(expr):
            return ast.ColumnRef(agg_slot(expr))
        return _rebuild(expr, rewrite)

    outputs: list[tuple[ast.Expr, str]] = []
    output_fields: list[Field] = []
    for i, item in enumerate(items):
        name = _output_name(item, i)
        rewritten = rewrite(item.expr)
        outputs.append((rewritten, name))
        output_fields.append(
            Field(qualifier, name, infer_type(item.expr, child.fields)))

    having = None
    if select.having is not None:
        having = rewrite(select.having)

    # Every remaining column reference must point at a key or agg slot.
    slot_names = {slot for _, slot in keys} | {s.name for s in aggregates}
    to_check = [expr for expr, _ in outputs]
    if having is not None:
        to_check.append(having)
    for expr in to_check:
        for node in expr.walk():
            if isinstance(node, ast.ColumnRef) and node.name not in slot_names:
                raise BindError(
                    f"column {node.qualified!r} must appear in GROUP BY "
                    "or be used in an aggregate function")

    return LogicalAggregate(
        child=child,
        keys=tuple(keys),
        aggregates=tuple(aggregates),
        outputs=tuple(outputs),
        having=having,
        qualifier=qualifier,
        fields=tuple(output_fields),
    )


def _rebuild(expr: ast.Expr, rewrite) -> ast.Expr:
    """Rebuild an expression node with rewritten children."""
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, rewrite(expr.left), rewrite(expr.right))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, rewrite(expr.operand))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(rewrite(expr.operand), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(rewrite(expr.operand),
                          tuple(rewrite(item) for item in expr.items),
                          expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(rewrite(expr.operand), rewrite(expr.low),
                           rewrite(expr.high), expr.negated)
    if isinstance(expr, ast.Case):
        operand = rewrite(expr.operand) if expr.operand is not None else None
        whens = tuple((rewrite(c), rewrite(r)) for c, r in expr.whens)
        default = rewrite(expr.default) if expr.default is not None else None
        return ast.Case(whens, operand, default)
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(expr.name,
                                tuple(rewrite(a) for a in expr.args),
                                expr.distinct)
    if isinstance(expr, ast.Cast):
        return ast.Cast(rewrite(expr.operand), expr.type_name)
    return expr


# ---------------------------------------------------------------------------
# FROM clause
# ---------------------------------------------------------------------------


def build_relation(relation: ast.Relation,
                   context: PlanContext) -> LogicalOp:
    if isinstance(relation, ast.TableRef):
        return _build_table_ref(relation, context)
    if isinstance(relation, ast.SubqueryRef):
        alias = (relation.alias or context.fresh_name("subquery")).lower()
        inner = _build_query(relation.query, context.child(), qualifier=alias)
        return _requalify(inner, alias)
    if isinstance(relation, ast.Join):
        left = build_relation(relation.left, context)
        right = build_relation(relation.right, context)
        _check_duplicate_bindings(left, right)
        combined = (*left.fields, *right.fields)
        if relation.condition is not None:
            if ast.contains_aggregate(relation.condition):
                raise BindError("aggregates are not allowed in JOIN ... ON")
            _bind_expression(relation.condition, combined)
        return LogicalJoin(relation.kind, left, right, relation.condition)
    raise PlanError(f"unsupported relation: {type(relation).__name__}")


def _check_duplicate_bindings(left: LogicalOp, right: LogicalOp) -> None:
    left_names = {f.qualifier for f in left.fields if f.qualifier}
    right_names = {f.qualifier for f in right.fields if f.qualifier}
    shared = left_names & right_names
    if shared:
        raise BindError(
            f"table name {sorted(shared)[0]!r} used twice without aliases")


def _build_table_ref(ref: ast.TableRef, context: PlanContext) -> LogicalOp:
    alias = (ref.alias or ref.name).lower()
    key = ref.name.lower()

    binding = context.cte_bindings.get(key)
    if binding is not None:
        fields = tuple(Field(alias, n, t) for n, t in binding.columns)
        return LogicalTempScan(binding.result_name, alias, fields)

    inline = context.inline_ctes.get(key)
    if inline is not None:
        # View expansion: plug the CTE body in, labelled with the alias.
        body, declared = inline
        scoped = context.child()
        del scoped.inline_ctes[key]  # CTEs are not recursive by default
        inner = _build_query(body, scoped, qualifier=alias)
        if declared is not None:
            inner = rename_outputs(inner, declared, alias)
        return _requalify(inner, alias)

    table = context.catalog.get(ref.name)
    fields = tuple(Field(alias, c.name.lower(), c.sql_type)
                   for c in table.schema.columns)
    return LogicalScan(ref.name, alias, fields)


def _requalify(plan: LogicalOp, alias: str) -> LogicalOp:
    """Ensure a derived table's outputs are addressable as alias.column."""
    if all(f.qualifier == alias for f in plan.fields):
        return plan
    fields = tuple(Field(alias, f.name, f.sql_type) for f in plan.fields)
    return LogicalRename(plan, fields)
