"""Name resolution and type inference shared by the builder and executor.

The same resolution rules are applied at bind time (building the logical
plan, where errors should surface) and at run time (mapping column
references onto frame slots): a qualified reference must match exactly one
field with that qualifier; an unqualified reference must match exactly one
field by name across all qualifiers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import BindError, TypeCheckError
from ..sql import ast
from ..types import SqlType, common_type
from .logical import Field


def resolve_column(fields: Sequence[Field], ref: ast.ColumnRef) -> int:
    """Index of the field ``ref`` resolves to, or raise BindError."""
    matches = [i for i, f in enumerate(fields) if f.matches(ref)]
    if not matches:
        available = ", ".join(str(f) for f in fields) or "<none>"
        raise BindError(
            f"column {ref.qualified!r} not found (available: {available})")
    if len(matches) > 1:
        raise BindError(f"column reference {ref.qualified!r} is ambiguous")
    return matches[0]


# Scalar function return types.  ``None`` means "common type of arguments".
_FUNCTION_TYPES: dict[str, Optional[SqlType]] = {
    "least": None,
    "greatest": None,
    "coalesce": None,
    "nullif": None,
    "abs": None,
    "ceiling": SqlType.FLOAT,
    "ceil": SqlType.FLOAT,
    "floor": SqlType.FLOAT,
    "round": SqlType.FLOAT,
    "sqrt": SqlType.FLOAT,
    "ln": SqlType.FLOAT,
    "exp": SqlType.FLOAT,
    "power": SqlType.FLOAT,
    "mod": None,
    "sign": SqlType.INTEGER,
    "length": SqlType.INTEGER,
    "upper": SqlType.TEXT,
    "lower": SqlType.TEXT,
    "concat": SqlType.TEXT,
}

SCALAR_FUNCTIONS = frozenset(_FUNCTION_TYPES)


def infer_type(expr: ast.Expr, fields: Sequence[Field]) -> SqlType:
    """Static result type of ``expr`` over a row of ``fields``."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        if value is None:
            return SqlType.NULL
        if isinstance(value, bool):
            return SqlType.BOOLEAN
        if isinstance(value, int):
            return SqlType.INTEGER
        if isinstance(value, float):
            return SqlType.FLOAT
        return SqlType.TEXT
    if isinstance(expr, ast.ColumnRef):
        return fields[resolve_column(fields, expr)].sql_type
    if isinstance(expr, ast.BinaryOp):
        op = expr.op
        if op in (ast.BinaryOperator.AND, ast.BinaryOperator.OR):
            return SqlType.BOOLEAN
        if op.is_comparison or op is ast.BinaryOperator.LIKE:
            return SqlType.BOOLEAN
        if op is ast.BinaryOperator.CONCAT:
            return SqlType.TEXT
        left = infer_type(expr.left, fields)
        right = infer_type(expr.right, fields)
        result = common_type(left, right)
        if not result.is_numeric and result is not SqlType.NULL:
            raise TypeCheckError(
                f"operator {op.value} requires numeric operands, "
                f"got {left} and {right}")
        return result
    if isinstance(expr, ast.UnaryOp):
        if expr.op is ast.UnaryOperator.NOT:
            return SqlType.BOOLEAN
        return infer_type(expr.operand, fields)
    if isinstance(expr, (ast.IsNull, ast.InList, ast.Between)):
        return SqlType.BOOLEAN
    if isinstance(expr, ast.Case):
        result = SqlType.NULL
        for _, branch in expr.whens:
            result = common_type(result, infer_type(branch, fields))
        if expr.default is not None:
            result = common_type(result, infer_type(expr.default, fields))
        return result
    if isinstance(expr, ast.Cast):
        from ..types import type_from_name
        return type_from_name(expr.type_name)
    if isinstance(expr, ast.FunctionCall):
        return _infer_call_type(expr, fields)
    if isinstance(expr, ast.Star):
        raise BindError("'*' is not valid in this context")
    raise TypeCheckError(f"cannot type expression {type(expr).__name__}")


def _infer_call_type(call: ast.FunctionCall,
                     fields: Sequence[Field]) -> SqlType:
    name = call.name
    if name in ast.AGGREGATE_FUNCTIONS:
        if name == "count":
            return SqlType.INTEGER
        if name == "avg":
            return SqlType.FLOAT
        # SUM/MIN/MAX follow their argument.
        arg_type = infer_type(call.args[0], fields)
        if name == "sum" and arg_type is SqlType.INTEGER:
            return SqlType.INTEGER
        return arg_type
    if name in _FUNCTION_TYPES:
        fixed = _FUNCTION_TYPES[name]
        if fixed is not None:
            return fixed
        result = SqlType.NULL
        for arg in call.args:
            result = common_type(result, infer_type(arg, fields))
        return result
    raise BindError(f"unknown function: {name!r}")
