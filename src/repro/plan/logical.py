"""Logical plan operators.

A logical plan is a tree of the relational operators the rewrite subsystem
and the planner manipulate.  Every node exposes:

* ``fields`` — the ordered output columns as (qualifier, name, type)
  triples; qualifiers are lower-cased binding names (table aliases, CTE
  names) or None for anonymous computed columns;
* ``children()`` / ``with_children()`` — uniform traversal and functional
  update, which the rewrite framework relies on.

Expressions inside nodes are AST expressions (:mod:`repro.sql.ast`); they are
resolved against fields both at bind time (by the builder) and at run time
(by the vectorized evaluator), with identical resolution rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Sequence

from ..errors import PlanError
from ..sql import ast
from ..types import SqlType


@dataclass(frozen=True)
class Field:
    """One output column of a logical operator."""

    qualifier: Optional[str]
    name: str
    sql_type: SqlType

    def matches(self, ref: ast.ColumnRef) -> bool:
        if ref.table is not None and (self.qualifier is None
                                      or ref.table.lower() != self.qualifier):
            return False
        return ref.name.lower() == self.name

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        prefix = f"{self.qualifier}." if self.qualifier else ""
        return f"{prefix}{self.name}"


class LogicalOp:
    """Base class for logical operators."""

    fields: tuple[Field, ...]

    def children(self) -> tuple["LogicalOp", ...]:
        return ()

    def with_children(self, children: Sequence["LogicalOp"]) -> "LogicalOp":
        if children:
            raise PlanError(f"{type(self).__name__} takes no children")
        return self

    def walk(self) -> Iterator["LogicalOp"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    # Short operator label for EXPLAIN.
    def label(self) -> str:
        return type(self).__name__.removeprefix("Logical")


@dataclass(frozen=True)
class LogicalScan(LogicalOp):
    """Scan of a catalog base table."""

    table_name: str
    alias: str  # binding name, lower-cased
    fields: tuple[Field, ...] = ()

    def label(self) -> str:
        if self.alias != self.table_name.lower():
            return f"Scan({self.table_name} AS {self.alias})"
        return f"Scan({self.table_name})"


@dataclass(frozen=True)
class LogicalTempScan(LogicalOp):
    """Scan of an intermediate result held in the ResultRegistry.

    Used for CTE working/main tables and common-result materializations.
    """

    result_name: str
    alias: str
    fields: tuple[Field, ...] = ()

    def label(self) -> str:
        if self.alias != self.result_name.lower():
            return f"TempScan({self.result_name} AS {self.alias})"
        return f"TempScan({self.result_name})"


@dataclass(frozen=True)
class LogicalValues(LogicalOp):
    """Inline literal rows (VALUES / SELECT without FROM)."""

    rows: tuple[tuple[object, ...], ...]
    fields: tuple[Field, ...] = ()

    def label(self) -> str:
        return f"Values({len(self.rows)} rows)"


@dataclass(frozen=True)
class LogicalFilter(LogicalOp):
    child: LogicalOp
    predicate: ast.Expr

    @property
    def fields(self) -> tuple[Field, ...]:  # type: ignore[override]
        return self.child.fields

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "LogicalFilter":
        (child,) = children
        return replace(self, child=child)

    def label(self) -> str:
        from ..sql.printer import expr_to_sql
        return f"Filter({expr_to_sql(self.predicate)})"


@dataclass(frozen=True)
class LogicalProject(LogicalOp):
    """Projection: compute named output expressions.

    ``qualifier`` labels the produced columns (e.g. a subquery alias) so
    parents can reference them qualified.
    """

    child: LogicalOp
    exprs: tuple[tuple[ast.Expr, str], ...]
    qualifier: Optional[str] = None
    fields: tuple[Field, ...] = ()

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "LogicalProject":
        (child,) = children
        return replace(self, child=child)

    def label(self) -> str:
        names = ", ".join(name for _, name in self.exprs)
        return f"Project({names})"


@dataclass(frozen=True)
class LogicalRename(LogicalOp):
    """Positional relabel: same columns, new names/qualifiers/types.

    Unlike a Project it needs no column references, so it is immune to
    duplicate names in the child's output (``SELECT n, n FROM t``) —
    which is why CTE declared-column renames and derived-table
    requalification use it.
    """

    child: LogicalOp
    fields: tuple[Field, ...] = ()

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "LogicalRename":
        (child,) = children
        return replace(self, child=child)

    def label(self) -> str:
        names = ", ".join(str(f) for f in self.fields)
        return f"Rename({names})"


@dataclass(frozen=True)
class LogicalJoin(LogicalOp):
    kind: ast.JoinKind
    left: LogicalOp
    right: LogicalOp
    condition: Optional[ast.Expr] = None

    @property
    def fields(self) -> tuple[Field, ...]:  # type: ignore[override]
        return (*self.left.fields, *self.right.fields)

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[LogicalOp]) -> "LogicalJoin":
        left, right = children
        return replace(self, left=left, right=right)

    def label(self) -> str:
        from ..sql.printer import expr_to_sql
        condition = (f" ON {expr_to_sql(self.condition)}"
                     if self.condition is not None else "")
        return f"{self.kind.value}Join{condition}"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate computation: the call and its output slot name."""

    call: ast.FunctionCall
    name: str


@dataclass(frozen=True)
class LogicalAggregate(LogicalOp):
    """Hash aggregation.

    ``keys`` are the GROUP BY expressions (with generated slot names);
    ``aggregates`` are the distinct aggregate calls found in the select
    list / HAVING; ``outputs`` are the final select items expressed over
    key slots and aggregate slots (see builder decomposition).
    """

    child: LogicalOp
    keys: tuple[tuple[ast.Expr, str], ...]
    aggregates: tuple[AggregateSpec, ...]
    outputs: tuple[tuple[ast.Expr, str], ...]
    having: Optional[ast.Expr] = None
    qualifier: Optional[str] = None
    fields: tuple[Field, ...] = ()

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self,
                      children: Sequence[LogicalOp]) -> "LogicalAggregate":
        (child,) = children
        return replace(self, child=child)

    def label(self) -> str:
        keys = ", ".join(name for _, name in self.keys)
        aggs = ", ".join(spec.name for spec in self.aggregates)
        return f"Aggregate(keys=[{keys}], aggs=[{aggs}])"


@dataclass(frozen=True)
class LogicalSemiJoin(LogicalOp):
    """Semi join (EXISTS / IN-subquery) or anti join (NOT EXISTS / NOT IN).

    Keeps left rows with at least one (semi) or zero (anti) qualifying
    matches on the right; outputs only the left columns.  ``null_aware``
    selects SQL's NOT IN semantics: a NULL probe value, or any NULL in
    the subquery's output, disqualifies unmatched rows (three-valued
    logic makes them UNKNOWN, which WHERE drops).
    """

    left: LogicalOp
    right: LogicalOp
    condition: Optional[ast.Expr] = None
    anti: bool = False
    null_aware: bool = False
    # For null-aware anti joins: the probe/key pair whose NULLs matter.
    probe_expr: Optional[ast.Expr] = None
    key_expr: Optional[ast.Expr] = None

    @property
    def fields(self) -> tuple[Field, ...]:  # type: ignore[override]
        return self.left.fields

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[LogicalOp]) -> "LogicalSemiJoin":
        left, right = children
        return replace(self, left=left, right=right)

    def label(self) -> str:
        from ..sql.printer import expr_to_sql
        name = "AntiJoin" if self.anti else "SemiJoin"
        condition = (f" ON {expr_to_sql(self.condition)}"
                     if self.condition is not None else "")
        return f"{name}{condition}"


@dataclass(frozen=True)
class LogicalSetDifference(LogicalOp):
    """EXCEPT (``intersect=False``) or INTERSECT (``intersect=True``),
    both with SQL's distinct semantics."""

    left: LogicalOp
    right: LogicalOp
    intersect: bool = False
    fields: tuple[Field, ...] = ()

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.left, self.right)

    def with_children(self,
                      children: Sequence[LogicalOp]) -> "LogicalSetDifference":
        left, right = children
        return replace(self, left=left, right=right)

    def label(self) -> str:
        return "Intersect" if self.intersect else "Except"


@dataclass(frozen=True)
class LogicalUnion(LogicalOp):
    left: LogicalOp
    right: LogicalOp
    all: bool = False
    fields: tuple[Field, ...] = ()

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[LogicalOp]) -> "LogicalUnion":
        left, right = children
        return replace(self, left=left, right=right)

    def label(self) -> str:
        return "UnionAll" if self.all else "Union"


@dataclass(frozen=True)
class LogicalDistinct(LogicalOp):
    child: LogicalOp

    @property
    def fields(self) -> tuple[Field, ...]:  # type: ignore[override]
        return self.child.fields

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "LogicalDistinct":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class LogicalSort(LogicalOp):
    child: LogicalOp
    keys: tuple[tuple[ast.Expr, bool], ...]  # (expr, ascending)

    @property
    def fields(self) -> tuple[Field, ...]:  # type: ignore[override]
        return self.child.fields

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "LogicalSort":
        (child,) = children
        return replace(self, child=child)

    def label(self) -> str:
        from ..sql.printer import expr_to_sql
        keys = ", ".join(expr_to_sql(e) + ("" if asc else " DESC")
                         for e, asc in self.keys)
        return f"Sort({keys})"


@dataclass(frozen=True)
class LogicalLimit(LogicalOp):
    child: LogicalOp
    limit: Optional[int] = None
    offset: int = 0

    @property
    def fields(self) -> tuple[Field, ...]:  # type: ignore[override]
        return self.child.fields

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "LogicalLimit":
        (child,) = children
        return replace(self, child=child)

    def label(self) -> str:
        parts = []
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        if self.offset:
            parts.append(f"offset={self.offset}")
        return f"Limit({', '.join(parts)})"


def plan_to_text(op: LogicalOp, indent: int = 0) -> str:
    """Indented tree rendering of a logical plan (used by EXPLAIN)."""
    lines = ["  " * indent + op.label()]
    for child in op.children():
        lines.append(plan_to_text(child, indent + 1))
    return "\n".join(lines)


def transform(op: LogicalOp, visitor) -> LogicalOp:
    """Bottom-up rewrite: apply ``visitor`` to every node after its
    children have been rewritten.  ``visitor`` returns a (possibly new)
    node."""
    children = op.children()
    if children:
        new_children = [transform(child, visitor) for child in children]
        if any(new is not old
               for new, old in zip(new_children, children)):
            op = op.with_children(new_children)
    return visitor(op)
