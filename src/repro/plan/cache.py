"""Shared plan cache: compiled programs keyed by normalized statement
shape.

The serving layer's whole point (ROADMAP: "Multi-client serving layer")
is amortizing the per-statement parse → bind → rewrite → compile cost
the paper's Fig. 1 storm measures — across statements *and* across
sessions.  The cache is engine-level state (one per
:class:`repro.engine.engine.Engine`), safe for concurrent sessions, and
holds two maps:

* **text memo** — exact statement text → its normalized identity, so a
  replayed statement skips even the parse;
* **program store** — ``(shape, literals, options fingerprint)`` →
  compiled :class:`~repro.plan.program.Program`, so two texts that
  differ only in whitespace or identifier case still share one program.

A *hit* returns a compiled program untouched by parse/plan/rewrite/
compile.  A *shape hit* means the family was seen but with different
constants: the plan is recompiled for the new literal vector (programs
embed their constants — constant folding and pushability analysis
depend on the values) and cached alongside its siblings, while the
normalizer guarantees the family is counted as one shape.  Compiled
programs are immutable at run time (all jump targets and loop specs are
fixed at compile), which is what makes sharing one program object
across concurrently-running sessions sound — each run carries its own
registry and execution context.

Invalidation is by catalog version: DDL (and any DML that changes a
table's schema signature, e.g. a type-widening INSERT) bumps
``Catalog.version``; entries remember the version they compiled against
and a stale entry is dropped on lookup.  Hit/miss/invalidation counters
land on :class:`~repro.execution.context.ExecutionStats`, so they
surface in EXPLAIN ANALYZE and ``metrics_snapshot()`` like every other
engine counter.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from ..sql.normalize import NormalizedStatement


class PlanCache:
    """Engine-wide compiled-program cache (see module docstring)."""

    def __init__(self, stats=None, max_programs: int = 256,
                 max_texts: int = 1024):
        self._programs: OrderedDict[tuple, tuple] = OrderedDict()
        self._texts: OrderedDict[tuple, NormalizedStatement] = \
            OrderedDict()
        self._shapes: set[tuple] = set()
        self._max_programs = max_programs
        self._max_texts = max_texts
        self._lock = threading.Lock()
        self.stats = stats

    # -- lookups -------------------------------------------------------------

    def get_text(self, sql_text: str, fingerprint: tuple,
                 catalog_version: int):
        """Program for an exact statement text, or None.

        A hit skips the parse as well as the compile.  Counts neither
        hits nor misses by itself — a text miss may still become a
        shape-level hit after the parse; :meth:`get_normalized` does
        the counting."""
        with self._lock:
            norm = self._texts.get((sql_text, fingerprint))
        if norm is None:
            return None
        return self.get_normalized(norm, fingerprint, catalog_version)

    def knows_text(self, sql_text: str, fingerprint: tuple) -> bool:
        """Whether the text memo holds this statement (meaning a
        ``get_text`` call just did the counted program lookup)."""
        with self._lock:
            return (sql_text, fingerprint) in self._texts

    def get_normalized(self, norm: NormalizedStatement, fingerprint: tuple,
                       catalog_version: int):
        """Program for a normalized statement, or None (counted)."""
        key = (norm.shape, norm.literals, fingerprint)
        with self._lock:
            entry = self._programs.get(key)
            if entry is not None:
                program, version = entry
                if version == catalog_version:
                    self._programs.move_to_end(key)
                    self._count("plan_cache_hits")
                    return program
                del self._programs[key]
                self._count("plan_cache_invalidations")
            if (norm.shape, fingerprint) in self._shapes:
                self._count("plan_cache_shape_hits")
            self._count("plan_cache_misses")
        return None

    # -- population ----------------------------------------------------------

    def store(self, sql_text: Optional[str], norm: NormalizedStatement,
              fingerprint: tuple, catalog_version: int, program) -> None:
        """Remember a freshly compiled program (and its source text)."""
        key = (norm.shape, norm.literals, fingerprint)
        with self._lock:
            self._programs[key] = (program, catalog_version)
            self._programs.move_to_end(key)
            while len(self._programs) > self._max_programs:
                self._programs.popitem(last=False)
            self._shapes.add((norm.shape, fingerprint))
            if sql_text is not None:
                self._texts[(sql_text, fingerprint)] = norm
                while len(self._texts) > self._max_texts:
                    self._texts.popitem(last=False)

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._programs.clear()
            self._texts.clear()
            self._shapes.clear()

    def __len__(self) -> int:
        return len(self._programs)

    def snapshot(self) -> dict:
        """Cache occupancy for diagnostics/metrics."""
        with self._lock:
            return {
                "programs": len(self._programs),
                "texts": len(self._texts),
                "shapes": len(self._shapes),
            }

    def _count(self, counter: str) -> None:
        if self.stats is not None:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
