"""Vectorized kernels shared by join, aggregation, distinct and sort.

The central abstraction is *key encoding*: a list of columns is turned into
a single int64 code per row via per-column factorization and mixed-radix
combination.  Join keys encode NULL as -1 (never matches); grouping keys
encode NULL as an ordinary bucket (SQL groups NULLs together).

Every factorizing kernel takes an optional :class:`KernelCache`: when
given, the per-column dictionary (the ``np.unique`` result) is memoized
keyed by the column's version, so loop-invariant columns are factorized
once per loop instead of once per iteration.  Cached code arrays are
read-only; kernels that combine codes always allocate fresh output.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..storage import Column
from .kernel_cache import KernelCache, build_dictionary


def factorize(column: Column, nulls_match: bool,
              cache: Optional[KernelCache] = None
              ) -> tuple[np.ndarray, int]:
    """Per-column dense codes.

    Returns (codes, cardinality).  Valid values get codes in
    [0, n_unique); NULLs get ``n_unique`` when ``nulls_match`` (they form
    their own group) or -1 otherwise (they never match anything).

    With a cache, the returned array may be shared (and read-only);
    callers must not mutate it in place.
    """
    if cache is not None:
        dictionary = cache.dictionary(column)
        n_unique = dictionary.cardinality
        if nulls_match:
            if dictionary.has_nulls:
                codes = np.array(dictionary.codes)
                codes[column.mask] = n_unique
                return codes, n_unique + 1
            return dictionary.codes, n_unique + 1
        return dictionary.codes, n_unique
    dictionary = build_dictionary(column)
    n_unique = dictionary.cardinality
    codes = np.array(dictionary.codes)
    if nulls_match:
        codes[column.mask] = n_unique
        return codes, n_unique + 1
    return codes, n_unique


def encode_keys(columns: Sequence[Column], nulls_match: bool,
                cache: Optional[KernelCache] = None) -> np.ndarray:
    """Combine key columns into one int64 code per row (-1 = no-match)."""
    if not columns:
        raise ValueError("encode_keys needs at least one column")
    combined = None
    for column in columns:
        codes, cardinality = factorize(column, nulls_match, cache)
        if combined is None:
            combined = codes
            combined_card = max(cardinality, 1)
            continue
        bad = (combined < 0) | (codes < 0)
        combined = combined * max(cardinality, 1) + codes
        combined[bad] = -1
        combined_card *= max(cardinality, 1)
        if combined_card > (1 << 62):
            # Mixed-radix overflow: re-densify before continuing.
            valid = combined >= 0
            if valid.any():
                _, inverse = np.unique(combined[valid], return_inverse=True)
                combined = combined.copy()
                combined[valid] = inverse
                combined_card = int(inverse.max()) + 1 if len(inverse) else 1
            else:
                combined_card = 1
    return combined


def build_probe_index(codes: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Sort a build side's codes for binary-search probing.

    Returns (sorted_codes, sorted_positions) with -1 (no-match) codes
    dropped — the shape :func:`equi_join_pairs` accepts as
    ``right_sorted``.  Building it once lets many probe morsels share
    one sorted build side.
    """
    valid = codes >= 0
    positions = np.nonzero(valid)[0]
    valid_codes = codes[valid]
    order = np.argsort(valid_codes, kind="stable")
    return valid_codes[order], positions[order]


def equi_join_pairs(left_codes: np.ndarray,
                    right_codes: np.ndarray,
                    right_sorted: tuple[np.ndarray, np.ndarray] | None = None
                    ) -> tuple[np.ndarray, np.ndarray]:
    """All matching (left_row, right_row) index pairs for equal codes.

    Codes of -1 never match.  Pairs are grouped by left row in left-row
    order, which downstream outer-join padding relies on.

    ``right_sorted`` is an optional prebuilt (sorted_codes,
    sorted_positions) pair for the right side — a cached
    :class:`~repro.execution.kernel_cache.JoinIndex` supplies it so a
    loop-invariant build side is sorted once per loop, not per iteration.
    """
    if right_sorted is not None:
        sorted_codes, sorted_positions = right_sorted
    else:
        sorted_codes, sorted_positions = build_probe_index(right_codes)

    valid_left = left_codes >= 0
    lo = np.searchsorted(sorted_codes, left_codes, "left")
    hi = np.searchsorted(sorted_codes, left_codes, "right")
    counts = np.where(valid_left, hi - lo, 0)

    total = int(counts.sum())
    left_idx = np.repeat(np.arange(len(left_codes), dtype=np.int64), counts)
    if total == 0:
        return left_idx, np.empty(0, dtype=np.int64)
    starts = np.repeat(lo, counts)
    cumulative = np.cumsum(counts)
    first_of_row = np.repeat(cumulative - counts, counts)
    offsets = np.arange(total, dtype=np.int64) - first_of_row
    right_idx = sorted_positions[starts + offsets]
    return left_idx, right_idx


def group_ids(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Dense group ids plus the first-row index of each group.

    ``codes`` must have no -1 entries (use nulls_match=True encoding).
    """
    uniques, first_index, inverse = np.unique(
        codes, return_index=True, return_inverse=True)
    del uniques
    return inverse.astype(np.int64), first_index.astype(np.int64)


def distinct_indices(columns: Sequence[Column],
                     cache: Optional[KernelCache] = None) -> np.ndarray:
    """Row indices keeping the first occurrence of each distinct row."""
    if not columns:
        return np.zeros(1, dtype=np.int64)
    codes = encode_keys(columns, nulls_match=True, cache=cache)
    _, first_index = group_ids(codes)
    return np.sort(first_index)


def scatter_update(old: Column, positions: np.ndarray,
                   new_values: Column) -> tuple[Column, np.ndarray]:
    """Keyed merge: scatter ``new_values`` over ``positions`` of ``old``.

    Returns (merged column, changed mask over ``positions``) where
    *changed* is SQL ``IS DISTINCT FROM`` between the old and new value
    at each position.  When nothing changed, the original column object
    is returned unchanged so its version — and any kernel-cache state
    keyed by it — survives.
    """
    if new_values.sql_type is not old.sql_type:
        new_values = new_values.cast(old.sql_type)
    changed = old.take(positions).is_distinct_from(new_values)
    if not changed.any():
        return old, changed
    data = old.data.copy()
    mask = old.mask.copy()
    data[positions] = new_values.data
    mask[positions] = new_values.mask
    return Column(old.sql_type, data, mask), changed


def sort_indices(key_columns: Sequence[Column],
                 ascending: Sequence[bool],
                 cache: Optional[KernelCache] = None) -> np.ndarray:
    """Stable multi-key sort order.  NULLs sort last under ASC and first
    under DESC (treated as the largest value, PostgreSQL's default)."""
    if not key_columns:
        return np.arange(0, dtype=np.int64)
    sort_keys = []
    for column, asc in zip(key_columns, ascending):
        codes, cardinality = factorize(column, nulls_match=False, cache=cache)
        # NULLs become the largest rank.
        ranks = np.where(codes < 0, cardinality, codes)
        if not asc:
            ranks = -ranks
        sort_keys.append(ranks)
    # np.lexsort uses the *last* key as primary.
    return np.lexsort(tuple(reversed(sort_keys))).astype(np.int64)
