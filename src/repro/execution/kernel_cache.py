"""Iteration-aware kernel cache: loop-invariant state carried across
iterations.

DBSpinner's whole argument is that an iterative CTE runs as *one* plan,
so per-iteration overheads dominate end-to-end time.  Three such
overheads are pure recomputation of loop-invariant state, and this module
removes them:

* **Column dictionaries** — ``factorize``/``encode_keys`` re-ran
  ``np.unique`` over the static build side of every join on every trip
  around the loop.  :class:`KernelCache` memoizes the per-column
  dictionary (sorted uniques + dense codes) keyed by the column's
  :attr:`~repro.storage.column.Column.version`.  Columns are immutable —
  every mutation in the engine constructs a new column with a fresh
  version — so a version-keyed entry can never be stale.  DML still
  *invalidates* the replaced table's entries eagerly (memory hygiene and
  belt-and-braces; see :mod:`repro.engine.dml`).

* **Join build-side indexes** — for an equi join the executor needs the
  build side factorized *and sorted*.  When the build input is
  loop-invariant (base tables, and the COMMON#k blocks the common-result
  rewrite materializes before the loop) its columns are the same objects
  every iteration, so the whole index — dictionaries, mixed-radix codes,
  sort order — is cached keyed by the tuple of column versions and
  reused.  The probe side is encoded *against* the build dictionaries
  with a binary search instead of the concat-and-re-unique of both sides.

* **Incremental distinct state** — UNION DISTINCT fixed-point loops
  deduplicated each candidate delta by re-encoding ``result ++
  candidate`` from scratch (and then walking a Python set row by row).
  :class:`IncrementalDistinctIndex` keeps per-column value→id
  dictionaries plus a sorted row index of everything seen, so each delta
  is deduplicated with vectorized searches and an O(delta + seen)
  merge — amortized O(1) per row over the loop, the precursor of full
  semi-naive delta evaluation.

All structures are observable: hits/misses/invalidations are counted on
:class:`~repro.execution.context.ExecutionStats` and surfaced by EXPLAIN
ANALYZE.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Sequence

import numpy as np

from ..storage import Column

# Mixed-radix combination of per-column codes must stay inside int64.
_RADIX_LIMIT = 1 << 62


def _comparable_values(values: np.ndarray) -> np.ndarray:
    """Object (TEXT) payloads become fixed-width numpy strings so that
    sorting/searching uses well-defined comparisons."""
    if values.dtype == object:
        return values.astype(str)
    return values


def _lookup_sorted(haystack: np.ndarray,
                   needles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Positions of ``needles`` in the sorted ``haystack`` plus a found
    mask.  NaN probes match a NaN entry (np.unique collapses NaNs to one
    slot at the end, matching the joint-encoding behaviour this replaces).
    """
    if not len(haystack):
        return (np.zeros(len(needles), dtype=np.int64),
                np.zeros(len(needles), dtype=np.bool_))
    positions = np.searchsorted(haystack, needles)
    inside = positions < len(haystack)
    clipped = np.where(inside, positions, 0)
    found = inside & (haystack[clipped] == needles)
    if needles.dtype.kind == "f":
        nan_probe = np.isnan(needles)
        if nan_probe.any() and np.isnan(haystack[-1]):
            clipped = np.where(nan_probe, len(haystack) - 1, clipped)
            found = found | nan_probe
    return clipped.astype(np.int64), found


class ColumnDictionary:
    """One column's factorization: sorted unique valid values and dense
    per-row codes (-1 for NULL).  ``codes`` is marked read-only because
    the same array is handed to every consumer."""

    __slots__ = ("uniques", "codes", "has_nulls")

    def __init__(self, uniques: np.ndarray, codes: np.ndarray,
                 has_nulls: bool):
        codes.setflags(write=False)
        self.uniques = uniques
        self.codes = codes
        self.has_nulls = has_nulls

    @property
    def cardinality(self) -> int:
        return len(self.uniques)

    def nbytes(self) -> int:
        return int(self.uniques.nbytes) + int(self.codes.nbytes)


def build_dictionary(column: Column) -> ColumnDictionary:
    """Factorize one column (the uncached kernel)."""
    count = len(column)
    codes = np.full(count, -1, dtype=np.int64)
    valid = ~column.mask
    has_nulls = bool(column.mask.any())
    if valid.any():
        values = _comparable_values(column.data[valid])
        uniques, inverse = np.unique(values, return_inverse=True)
        codes[valid] = inverse
    else:
        uniques = np.empty(0, dtype=np.int64)
    return ColumnDictionary(uniques, codes, has_nulls)


def probe_dictionary(dictionary: ColumnDictionary,
                     column: Column) -> np.ndarray:
    """Codes of ``column`` in ``dictionary``'s space; values absent from
    the dictionary — which therefore cannot match its column — and NULLs
    get -1."""
    codes = np.full(len(column), -1, dtype=np.int64)
    valid = ~column.mask
    if not valid.any() or dictionary.cardinality == 0:
        return codes
    values = _comparable_values(column.data[valid])
    positions, found = _lookup_sorted(dictionary.uniques, values)
    codes[valid] = np.where(found, positions, -1)
    return codes


class JoinIndex:
    """A reusable equi-join build side: per-column dictionaries, combined
    mixed-radix codes, and the sorted order probe lookups binary-search.
    """

    __slots__ = ("dictionaries", "radices", "codes", "sorted_codes",
                 "sorted_positions")

    def __init__(self, dictionaries: list[ColumnDictionary],
                 radices: list[int], codes: np.ndarray):
        codes.setflags(write=False)
        self.dictionaries = dictionaries
        self.radices = radices
        self.codes = codes
        valid = codes >= 0
        positions = np.nonzero(valid)[0]
        valid_codes = codes[valid]
        order = np.argsort(valid_codes, kind="stable")
        self.sorted_codes = valid_codes[order]
        self.sorted_positions = positions[order]

    @property
    def sorted(self) -> tuple[np.ndarray, np.ndarray]:
        return self.sorted_codes, self.sorted_positions

    def probe(self, columns: Sequence[Column]) -> np.ndarray:
        """Encode probe-side key columns into this index's code space."""
        combined: Optional[np.ndarray] = None
        for dictionary, radix, column in zip(self.dictionaries,
                                             self.radices, columns):
            codes = probe_dictionary(dictionary, column)
            if combined is None:
                combined = codes
                continue
            bad = (combined < 0) | (codes < 0)
            combined = combined * radix + codes
            combined[bad] = -1
        assert combined is not None
        return combined

    def nbytes(self) -> int:
        payload = sum(d.nbytes() for d in self.dictionaries)
        return payload + int(self.codes.nbytes) \
            + int(self.sorted_codes.nbytes) \
            + int(self.sorted_positions.nbytes)


def build_join_index(columns: Sequence[Column],
                     cache: Optional["KernelCache"] = None
                     ) -> Optional[JoinIndex]:
    """Build an index over the build-side key columns.

    Returns None when the mixed-radix combination would overflow int64
    (the joint-encoding fallback re-densifies instead; see
    ``encode_keys``).
    """
    dictionaries = [cache.dictionary(c) if cache is not None
                    else build_dictionary(c) for c in columns]
    radices = [max(d.cardinality, 1) for d in dictionaries]
    combined: Optional[np.ndarray] = None
    combined_card = 1
    for dictionary, radix in zip(dictionaries, radices):
        if combined is None:
            combined = np.array(dictionary.codes)
            combined_card = radix
            continue
        combined_card *= radix
        if combined_card > _RADIX_LIMIT:
            return None
        bad = (combined < 0) | (dictionary.codes < 0)
        combined = combined * radix + dictionary.codes
        combined[bad] = -1
    assert combined is not None
    return JoinIndex(dictionaries, radices, combined)


class KernelCache:
    """Version-keyed memoization of dictionaries and join indexes.

    Entries are LRU-evicted; correctness never depends on residency
    because a column version is never reused (an eviction or invalidation
    only costs a recompute).

    The cache is engine-level state shared by every session, so all map
    mutations happen under one re-entrant lock (``join_index`` builds
    dictionaries through ``dictionary`` while holding it).  Cached
    payloads are immutable (read-only code arrays), so returning them
    outside the lock is safe."""

    def __init__(self, stats=None, max_dictionaries: int = 256,
                 max_indexes: int = 64):
        self._lock = threading.RLock()
        self._dictionaries: OrderedDict[int, ColumnDictionary] = \
            OrderedDict()
        self._indexes: OrderedDict[tuple[int, ...], JoinIndex] = \
            OrderedDict()
        # Build-side version tuples seen exactly once.  An index is only
        # built on the *second* request for the same versions: a build
        # side that changes every iteration never repeats, so this skips
        # index construction for it entirely (it would never be reused).
        self._index_candidates: OrderedDict[tuple[int, ...], bool] = \
            OrderedDict()
        self._max_dictionaries = max_dictionaries
        self._max_indexes = max_indexes
        self.stats = stats

    # -- per-column dictionaries -------------------------------------------

    def dictionary(self, column: Column) -> ColumnDictionary:
        with self._lock:
            entry = self._dictionaries.get(column.version)
            if entry is not None:
                self._dictionaries.move_to_end(column.version)
                if self.stats is not None:
                    self.stats.kernel_cache_hits += 1
                return entry
            if self.stats is not None:
                self.stats.kernel_cache_misses += 1
            entry = build_dictionary(column)
            self._dictionaries[column.version] = entry
            while len(self._dictionaries) > self._max_dictionaries:
                self._dictionaries.popitem(last=False)
            return entry

    # -- join build-side indexes -------------------------------------------

    def join_index(self, columns: Sequence[Column]) -> Optional[JoinIndex]:
        key = tuple(c.version for c in columns)
        with self._lock:
            entry = self._indexes.get(key)
            if entry is not None:
                self._indexes.move_to_end(key)
                if self.stats is not None:
                    self.stats.join_index_hits += 1
                return entry
            if self.stats is not None:
                self.stats.join_index_misses += 1
            if key not in self._index_candidates:
                # First sighting: loop-invariance unproven, let the
                # caller use the one-shot joint encoding (see class
                # docstring).
                self._index_candidates[key] = True
                while len(self._index_candidates) > 4 * self._max_indexes:
                    self._index_candidates.popitem(last=False)
                return None
            entry = build_join_index(columns, self)
            if entry is None:
                # Mixed-radix overflow: the combined key cardinality does
                # not fit int64, so the caller must fall back to one-shot
                # joint encoding.  Counted so EXPLAIN ANALYZE can surface
                # how often this silent fallback fires (ROADMAP:
                # repack-on-overflow).
                if self.stats is not None:
                    self.stats.join_index_overflows += 1
                return None
            self._index_candidates.pop(key, None)
            self._indexes[key] = entry
            while len(self._indexes) > self._max_indexes:
                self._indexes.popitem(last=False)
            return entry

    # -- invalidation ------------------------------------------------------

    def invalidate_columns(self, columns: Sequence[Column]) -> int:
        """Drop cached state derived from ``columns`` (DML hook)."""
        versions = {c.version for c in columns}
        dropped = 0
        with self._lock:
            for version in versions:
                if self._dictionaries.pop(version, None) is not None:
                    dropped += 1
            for key in [k for k in self._indexes
                        if any(v in versions for v in k)]:
                del self._indexes[key]
                dropped += 1
            for key in [k for k in self._index_candidates
                        if any(v in versions for v in k)]:
                del self._index_candidates[key]
        if dropped and self.stats is not None:
            self.stats.kernel_cache_invalidations += dropped
        return dropped

    def invalidate_table(self, table) -> int:
        # Segmented tables expose their backing columns without forcing a
        # consolidation (invalidating a table must not copy it).
        known = getattr(table, "known_columns", None)
        columns = known() if known is not None else table.columns
        return self.invalidate_columns(columns)

    def clear(self) -> None:
        with self._lock:
            self._dictionaries.clear()
            self._indexes.clear()
            self._index_candidates.clear()

    def nbytes(self) -> int:
        with self._lock:
            return (sum(d.nbytes() for d in self._dictionaries.values())
                    + sum(i.nbytes() for i in self._indexes.values()))


# ---------------------------------------------------------------------------
# Incremental distinct (UNION DISTINCT fixed points)
# ---------------------------------------------------------------------------


class _ValueDictionary:
    """An *incremental* value→id dictionary for one column.

    Ids are stable across batches (id 0 is reserved for NULL, matching
    nulls-match-grouping semantics), so row identities built from them
    survive dictionary growth — the property mixed-radix codes lack."""

    __slots__ = ("values", "ids", "next_id")

    def __init__(self) -> None:
        self.values: Optional[np.ndarray] = None
        self.ids = np.empty(0, dtype=np.int64)
        self.next_id = 1

    def encode(self, column: Column) -> np.ndarray:
        ids = np.zeros(len(column), dtype=np.int64)
        valid = ~column.mask
        if not valid.any():
            return ids
        values = _comparable_values(column.data[valid])
        if self.values is None or not len(self.values):
            uniques, inverse = np.unique(values, return_inverse=True)
            assigned = self.next_id + np.arange(len(uniques),
                                                dtype=np.int64)
            self.next_id += len(uniques)
            self.values = uniques
            self.ids = assigned
            ids[valid] = assigned[inverse]
            return ids
        positions, found = _lookup_sorted(self.values, values)
        batch = np.where(found, self.ids[positions], 0)
        missing = ~found
        if missing.any():
            new_uniques, new_inverse = np.unique(values[missing],
                                                 return_inverse=True)
            assigned = self.next_id + np.arange(len(new_uniques),
                                                dtype=np.int64)
            self.next_id += len(new_uniques)
            batch[missing] = assigned[new_inverse]
            merged_values = np.concatenate([self.values, new_uniques])
            order = np.argsort(merged_values, kind="stable")
            self.values = merged_values[order]
            self.ids = np.concatenate([self.ids, assigned])[order]
        ids[valid] = batch
        return ids


class IncrementalDistinctIndex:
    """Seen-row index for UNION DISTINCT fixed-point loops.

    Each column gets a :class:`_ValueDictionary`; a row's identity packs
    the per-column ids into one int64 with a fixed bit budget per column
    (62 bits split evenly), so membership tests are a single vectorized
    binary search over a plain int64 array — structured dtypes compare
    element-at-a-time in numpy and are ~100x slower.  Because ids are
    stable, the packed identity survives dictionary growth; when a
    dictionary outgrows its bit budget the index *repacks*: it re-splits
    the 62 bits according to each dictionary's actual size and rewrites
    the seen set under the new widths (O(seen), once per exhaustion)
    instead of abandoning incrementality.  Only when the dictionaries
    genuinely need more than 62 bits combined do ``filter_new``/``absorb``
    return None and the caller falls back to re-encoding from scratch.

    The index absorbs each accepted delta, so per-iteration work is
    proportional to the delta (plus one O(seen) sorted insert) instead of
    re-encoding the whole accumulated result."""

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError("IncrementalDistinctIndex needs >= 1 column")
        self._dictionaries = [_ValueDictionary() for _ in range(width)]
        # Per-column bit widths; start with an even split of the budget.
        self._shifts = [62 // width] * width
        self._seen = np.empty(0, dtype=np.int64)
        self.rows_absorbed = 0
        self.repacks = 0

    def _pack(self, columns: Sequence[Column]) -> Optional[np.ndarray]:
        all_ids = [dictionary.encode(column)
                   for dictionary, column in zip(self._dictionaries,
                                                 columns)]
        if any(dictionary.next_id >= (1 << shift)
               for dictionary, shift in zip(self._dictionaries,
                                            self._shifts)):
            if not self._repack():
                return None  # >62 bits genuinely needed: caller rescans
        packed: Optional[np.ndarray] = None
        for ids, shift in zip(all_ids, self._shifts):
            packed = ids if packed is None else (packed << shift) | ids
        return packed

    def _repack(self) -> bool:
        """Re-split the 62-bit budget by actual dictionary sizes.

        Each column needs enough bits for its current ``next_id``; the
        slack is spread round-robin as growth headroom.  The seen set is
        unpacked under the old widths and repacked under the new ones —
        per-column ids are stable, so row identities survive."""
        required = [max(d.next_id.bit_length(), 1)
                    for d in self._dictionaries]
        if sum(required) > 62:
            return False
        shifts = list(required)
        slack = 62 - sum(required)
        for i in range(slack):
            shifts[i % len(shifts)] += 1
        old = self._shifts
        if len(self._seen):
            remaining = self._seen
            parts = []
            # Later columns occupy the low bits; peel them off in reverse.
            for shift in reversed(old[1:]):
                parts.append(remaining & ((1 << shift) - 1))
                remaining = remaining >> shift
            parts.append(remaining)
            parts.reverse()
            packed = parts[0]
            for ids, shift in zip(parts[1:], shifts[1:]):
                packed = (packed << shift) | ids
            self._seen = np.sort(packed)
        self._shifts = shifts
        self.repacks += 1
        return True

    def _insert(self, rows: np.ndarray) -> None:
        if not len(rows):
            return
        rows = np.sort(rows)
        positions = np.searchsorted(self._seen, rows)
        self._seen = np.insert(self._seen, positions, rows)

    def absorb(self, columns: Sequence[Column],
               num_rows: int) -> Optional[bool]:
        """Add every (distinct) row of ``columns`` to the seen set.
        Returns None on id overflow (the index is then unusable)."""
        packed = self._pack(columns)
        if packed is None:
            return None
        self._insert(np.unique(packed))
        self.rows_absorbed += num_rows
        return True

    def filter_new(self, columns: Sequence[Column],
                   num_rows: int) -> Optional[np.ndarray]:
        """Mask of candidate rows not seen before (first occurrence wins
        within the batch); the surviving rows are absorbed.  Returns None
        on id overflow (the index is then unusable)."""
        packed = self._pack(columns)
        if packed is None:
            return None
        _, first_index = np.unique(packed, return_index=True)
        first_mask = np.zeros(num_rows, dtype=np.bool_)
        first_mask[first_index] = True
        if len(self._seen):
            positions, found = _lookup_sorted(self._seen, packed)
            new_mask = first_mask & ~found
        else:
            new_mask = first_mask
        self._insert(packed[new_mask])
        self.rows_absorbed += int(new_mask.sum())
        return new_mask
