"""Execution context: catalog access, the result registry, counters.

All instrumentation the benchmarks and the overhead model read lives here.
Counters are plain integers updated by operators; `snapshot()` freezes them
for reporting.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field

from ..storage import Catalog, ResultRegistry


def _default_plan_verifier() -> bool:
    """Default for ``enable_plan_verifier``: explicit REPRO_VERIFY wins,
    otherwise on under pytest/smoke runs and off in production — the
    verifier is a correctness guard, not a hot-path cost."""
    env = os.environ.get("REPRO_VERIFY")
    if env is not None:
        return env.strip().lower() not in ("", "0", "false", "no", "off")
    return "PYTEST_CURRENT_TEST" in os.environ or "pytest" in sys.modules


@dataclass
class ExecutionStats:
    """Counters accumulated while running plans and statements."""

    rows_scanned: int = 0
    rows_joined: int = 0
    rows_aggregated: int = 0
    rows_materialized: int = 0
    bytes_materialized: int = 0
    rows_moved: int = 0          # rows copied between main/working tables
    bytes_moved: int = 0
    renames: int = 0
    iterations: int = 0
    statements: int = 0
    plans_built: int = 0
    lock_acquisitions: int = 0
    merge_steps: int = 0
    common_results_built: int = 0
    predicate_pushdowns: int = 0
    # Iteration-aware kernel cache (see repro.execution.kernel_cache).
    kernel_cache_hits: int = 0
    kernel_cache_misses: int = 0
    kernel_cache_invalidations: int = 0
    join_index_hits: int = 0
    join_index_misses: int = 0
    # Silent-fallback events (ROADMAP repack-on-overflow triggers): the
    # join index hit mixed-radix int64 overflow, or the merge index
    # exhausted its per-column id bit budget and fell back to rescans.
    join_index_overflows: int = 0
    merge_index_hits: int = 0
    merge_index_rebuilds: int = 0
    merge_index_overflows: int = 0
    # Repack-on-overflow: the merge index rebuilt its bit packing with
    # wider per-column widths instead of falling back to a full rescan.
    merge_index_repacks: int = 0
    # Iterations served by the semi-naive delta path (frontier-only
    # recomputation) instead of a full working-table rebuild.
    delta_iterations: int = 0
    # Mid-loop strategy demotions: the loop engine abandoned delta mode
    # because the measured frontier stayed near-full (the bookkeeping
    # cost more than the recomputation it saved).
    strategy_demotions: int = 0
    # Delta-apply keyset-guard trips: an INNER-join body dropped a key
    # and the iteration was rerun through the full body.
    delta_guard_fallbacks: int = 0
    # Mid-loop strategy promotions: the movement fallback a demoted loop
    # landed on observed the frontier collapsing again and handed the
    # loop back to a fresh semi-naive delta strategy.
    strategy_promotions: int = 0
    # Iterations served by the fused delta pass (gate + partition +
    # recompute + apply in one batched columnar step).
    delta_fused_iterations: int = 0
    # Morsel-driven parallelism: batches dispatched, batches that ran on
    # the worker pool (vs. the single-threaded fallback), and rows
    # processed through morsel-split operators.
    morsel_batches: int = 0
    morsel_parallel_batches: int = 0
    morsel_rows: int = 0
    # Per-morsel partials produced by the two-phase grouped-aggregate
    # kernels (COUNT/SUM/AVG/MIN/MAX partial → final merge).
    morsel_agg_batches: int = 0
    # Shared plan cache (repro.plan.cache): full hits skip parse→bind→
    # rewrite→compile; shape hits saw the statement family before but
    # with different constants (recompiled); invalidations are entries
    # dropped because DDL bumped the catalog version underneath them.
    plan_cache_hits: int = 0
    plan_cache_shape_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_invalidations: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)

    def delta_since(self, snapshot: dict[str, int]) -> dict[str, int]:
        """Counter deltas accumulated since ``snapshot`` was taken.

        Counters absent from the snapshot (e.g. one taken before a
        release that added a counter, or an empty dict) count from zero.
        """
        return {key: value - snapshot.get(key, 0)
                for key, value in self.__dict__.items()}

    def reset(self) -> None:
        for key in self.__dict__:
            setattr(self, key, 0)


@dataclass
class SessionOptions:
    """Per-session switches, mirroring the paper's three optimizations.

    Each of the three evaluation sections (§VII-B/C/D) compares the engine
    with one of these turned off against the default configuration.
    """

    # Fig. 8 — use the rename operator for full-dataset updates instead of
    # merging the working table back into the main table.
    enable_rename: bool = True
    # Fig. 9 — materialize loop-invariant join subtrees once (§V-A).
    enable_common_results: bool = True
    # Fig. 10 — push final-query predicates into the non-iterative part
    # when safe (§V-B).
    enable_predicate_pushdown: bool = True
    # Outer-to-inner join conversion (enabler for common results).
    enable_outer_to_inner: bool = True
    # Cost-based greedy join reordering (paper §V-A future work); only
    # active when statistics are available.
    enable_join_reorder: bool = True
    # Iteration estimate used by the cost model for data/delta
    # termination conditions (no closed form exists; see repro.stats).
    default_iteration_estimate: int = 10
    # Compile hot expressions into fused closures (the LLVM-codegen
    # analog, see repro.execution.compiler).
    enable_expr_compile: bool = True
    # Iteration-aware kernel cache: memoized column dictionaries, reusable
    # join build-side indexes, and incremental UNION DISTINCT state (see
    # repro.execution.kernel_cache).  Disabling it restores recompute-
    # from-scratch kernels with bit-identical results.
    enable_kernel_cache: bool = True
    # Record a span trace + per-iteration loop telemetry for every
    # statement, retrievable via Database.last_trace()/trace_json()
    # (see repro.obs).  Off by default: the untraced hot path must stay
    # within noise of the pre-tracing engine.  EXPLAIN ANALYZE always
    # traces regardless of this switch.
    enable_tracing: bool = False
    # Semi-naive delta evaluation for ITERATIVE CTE loops: when the
    # planner proves the step query evolves each key independently (the
    # same per-key property behind Fig. 10 predicate pushdown), iterations
    # after the first recompute only the frontier of changed rows and
    # merge the delta back.  Bit-identical to full recomputation; off by
    # default until the analyzer has seen wider production exposure.
    enable_delta_iteration: bool = False
    # Feedback-driven strategy demotion: once the measured changed-row
    # frontier covers at least `delta_demotion_threshold` of the table
    # for `delta_demotion_patience` consecutive measurements, the loop
    # engine demotes SemiNaiveDelta to the plain full-body strategy —
    # near-full frontiers (e.g. PageRank, where every rank changes every
    # trip) make the delta bookkeeping pure overhead.  Results stay
    # bit-identical: demotion just routes iterations down the
    # always-compiled full body.
    enable_strategy_demotion: bool = True
    delta_demotion_threshold: float = 0.8
    delta_demotion_patience: int = 2
    # Feedback-driven strategy *promotion* (the demotion mirror): a loop
    # demoted to its movement fallback keeps measuring the changed-row
    # frontier; once it stays below `delta_promotion_threshold` of the
    # table for `delta_promotion_patience` consecutive measurements, the
    # engine re-promotes the loop to a fresh semi-naive delta strategy.
    # The promote threshold sits well under the demote threshold so the
    # pair forms a hysteresis band and cannot ping-pong every iteration.
    enable_strategy_promotion: bool = True
    delta_promotion_threshold: float = 0.5
    delta_promotion_patience: int = 2
    # Fuse the semi-naive delta quartet (gate/partition/apply plus the
    # recompute materialization) into one batched columnar step, so a
    # delta iteration costs a single dispatch instead of five.  The
    # quartet emission remains available (fusion off) and both shapes
    # pass the verifier's strategy-legality checks.
    enable_delta_fusion: bool = True
    # Morsel-driven parallelism: split large scans/filters/projections
    # and join probes into fixed-size row chunks dispatched across a
    # thread pool (NumPy kernels release the GIL).  Inputs smaller than
    # `morsel_min_rows` stay on the single-threaded path — below the
    # threshold the dispatch overhead exceeds the kernel work.
    parallel_morsels: bool = False
    morsel_size: int = 16_384
    morsel_workers: int = 4
    morsel_min_rows: int = 65_536
    # IR verifier (repro.verify): check schema/type propagation, step
    # CFG integrity, and strategy legality after building, after each
    # rewrite pass, and after compilation, raising VerificationError on
    # the first malformed IR.  Defaults on under pytest/smoke (or with
    # REPRO_VERIFY=1) and off otherwise.
    enable_plan_verifier: bool = field(
        default_factory=_default_plan_verifier)
    # Shared plan cache: reuse compiled programs across statements and
    # sessions when the normalized statement, its literals, and every
    # compile-relevant option match (see repro.plan.cache).  EXPLAIN
    # variants always bypass the cache so their reports reflect a real
    # compile.
    enable_plan_cache: bool = True
    # Safety cap for runaway iterative queries.
    max_iterations: int = 100_000

    def copy(self) -> "SessionOptions":
        return SessionOptions(**self.__dict__)

    # Options that cannot change the compiled program: tracing wraps the
    # run, and the cache switch only decides whether lookups happen.
    _NON_COMPILE_OPTIONS = ("enable_tracing", "enable_plan_cache")

    def compile_fingerprint(self) -> tuple:
        """Hashable identity of every option that can alter compilation.

        Part of the plan-cache key: two sessions share a cached program
        only when they would have compiled it identically."""
        return tuple(
            (name, value) for name, value in sorted(self.__dict__.items())
            if name not in self._NON_COMPILE_OPTIONS)


class ExecutionContext:
    """Everything operators need while running one statement."""

    def __init__(self, catalog: Catalog, registry: ResultRegistry,
                 options: SessionOptions | None = None,
                 stats: ExecutionStats | None = None,
                 kernel_cache=None, tracer=None):
        from ..obs.trace import NULL_TRACER
        from .compiler import ExpressionCache
        from .kernel_cache import KernelCache
        self.catalog = catalog
        self.registry = registry
        self.options = options or SessionOptions()
        self.stats = stats or ExecutionStats()
        self.expr_cache = ExpressionCache()
        # Shared across statements when the Database passes its own (so
        # loop-invariant state survives within and across queries and DML
        # can invalidate it); otherwise private to this context.
        self.kernel_cache = kernel_cache or KernelCache(self.stats)
        # Per-statement span tracer (repro.obs); NULL_TRACER when the
        # statement is not being traced.
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def active_kernel_cache(self):
        """The kernel cache, or None when the session disables it."""
        return self.kernel_cache if self.options.enable_kernel_cache \
            else None
