"""Vectorized columnar executor."""

from .context import ExecutionContext, ExecutionStats, SessionOptions
from .expressions import evaluate, evaluate_predicate
from .frame import Frame
from .operators import execute_plan, execute_to_table

__all__ = [
    "ExecutionContext",
    "ExecutionStats",
    "SessionOptions",
    "evaluate",
    "evaluate_predicate",
    "Frame",
    "execute_plan",
    "execute_to_table",
]
