"""Vectorized columnar executor."""

from .context import ExecutionContext, ExecutionStats, SessionOptions
from .expressions import evaluate, evaluate_predicate
from .frame import Frame
from .kernel_cache import IncrementalDistinctIndex, KernelCache
from .operators import execute_plan, execute_to_table

__all__ = [
    "ExecutionContext",
    "ExecutionStats",
    "SessionOptions",
    "IncrementalDistinctIndex",
    "KernelCache",
    "evaluate",
    "evaluate_predicate",
    "Frame",
    "execute_plan",
    "execute_to_table",
]
