"""Grouped aggregate kernels with SQL NULL semantics.

SUM/MIN/MAX/AVG ignore NULL inputs and return NULL for groups with no
valid input; COUNT returns 0.  COUNT(*) counts rows regardless of NULLs.

The grouped kernels dispatch through :func:`~repro.execution.morsel.run_morsels`
when the session opts into morsel execution (``ctx`` passed), as a
two-phase partial/final merge that is chunk-size-independent **by
construction**, not by tolerance:

* COUNT / valid-counts — per-morsel ``bincount`` partials summed with
  integer addition (exactly associative);
* MIN / MAX — per-morsel group extremes merged with the same reducer
  (order-independent, NaN-propagation included);
* SUM / AVG — floating addition is *not* associative, so the per-morsel
  "partial" is the filtered ``(gids, weights)`` row pairs; concatenated
  in morsel order they reproduce the single-shot filtered row order
  exactly, and one final ``bincount`` accumulates in that order —
  bit-identical to the unchunked kernel whatever the morsel size.

COUNT DISTINCT and TEXT extremes keep their single-shot paths (pair
factorization and the object-dtype scan do not decompose cleanly).
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError, TypeCheckError
from ..plan.binding import infer_type
from ..sql import ast
from ..storage import Column
from ..types import SqlType
from .expressions import evaluate
from .frame import Frame
from .kernels import factorize
from .morsel import run_morsels


def compute_aggregate(call: ast.FunctionCall, frame: Frame,
                      gids: np.ndarray, n_groups: int,
                      ctx=None) -> Column:
    """Evaluate one aggregate call per group over ``frame``.

    ``ctx`` (an :class:`~repro.execution.context.ExecutionContext`)
    enables the morselized two-phase kernels where the session opted in.
    """
    name = call.name
    if name == "count":
        return _count(call, frame, gids, n_groups, ctx)
    if len(call.args) != 1:
        raise TypeCheckError(f"{name.upper()} expects exactly one argument")
    if call.distinct:
        raise ExecutionError(
            f"DISTINCT is only supported inside COUNT, not {name.upper()}")
    values = evaluate(call.args[0], frame)
    if name == "sum":
        return _sum(values, gids, n_groups, ctx)
    if name == "avg":
        total = _sum(values.cast(SqlType.FLOAT), gids, n_groups, ctx)
        counts = _valid_counts(values, gids, n_groups, ctx)
        data = np.zeros(n_groups, dtype=np.float64)
        nonzero = counts > 0
        data[nonzero] = total.data[nonzero] / counts[nonzero]
        return Column(SqlType.FLOAT, data, counts == 0)
    if name in ("min", "max"):
        return _extreme(values, gids, n_groups, smallest=(name == "min"),
                        ctx=ctx)
    raise ExecutionError(f"unknown aggregate: {name!r}")


def _morsel_agg(ctx, gids: np.ndarray, fn, label: str):
    """Run one grouped kernel's partial phase over morsels of the input
    rows; returns the per-morsel partials or ``None`` (single-shot)."""
    if ctx is None:
        return None
    partials = run_morsels(ctx, len(gids), fn, label)
    if partials is not None:
        ctx.stats.morsel_agg_batches += len(partials)
    return partials


def _count(call: ast.FunctionCall, frame: Frame, gids: np.ndarray,
           n_groups: int, ctx=None) -> Column:
    if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
        partials = _morsel_agg(
            ctx, gids,
            lambda start, stop: np.bincount(gids[start:stop],
                                            minlength=n_groups),
            "aggregate:count")
        if partials is not None:
            data = np.sum(partials, axis=0).astype(np.int64)
        else:
            data = np.bincount(gids, minlength=n_groups).astype(np.int64)
        return Column(SqlType.INTEGER, data,
                      np.zeros(n_groups, dtype=np.bool_))
    if len(call.args) != 1:
        raise TypeCheckError("COUNT expects exactly one argument")
    values = evaluate(call.args[0], frame)
    if call.distinct:
        codes, _ = factorize(values, nulls_match=False)
        valid = codes >= 0
        if not valid.any():
            data = np.zeros(n_groups, dtype=np.int64)
        else:
            pairs = gids[valid] * (codes.max() + 1) + codes[valid]
            unique_pairs = np.unique(pairs)
            pair_gids = unique_pairs // (codes.max() + 1)
            data = np.bincount(pair_gids,
                               minlength=n_groups).astype(np.int64)
        return Column(SqlType.INTEGER, data,
                      np.zeros(n_groups, dtype=np.bool_))
    data = _valid_counts(values, gids, n_groups, ctx).astype(np.int64)
    return Column(SqlType.INTEGER, data, np.zeros(n_groups, dtype=np.bool_))


def _valid_counts(values: Column, gids: np.ndarray,
                  n_groups: int, ctx=None) -> np.ndarray:
    valid = ~values.mask
    if not valid.any():
        return np.zeros(n_groups, dtype=np.int64)
    partials = _morsel_agg(
        ctx, gids,
        lambda start, stop: np.bincount(
            gids[start:stop][valid[start:stop]], minlength=n_groups),
        "aggregate:valid_counts")
    if partials is not None:
        return np.sum(partials, axis=0).astype(np.int64)
    return np.bincount(gids[valid], minlength=n_groups).astype(np.int64)


def _sum(values: Column, gids: np.ndarray, n_groups: int,
         ctx=None) -> Column:
    if not values.sql_type.is_numeric and values.sql_type is not SqlType.NULL:
        raise TypeCheckError("SUM requires a numeric argument")
    result_type = (SqlType.INTEGER if values.sql_type is SqlType.INTEGER
                   else SqlType.FLOAT)
    counts = _valid_counts(values, gids, n_groups, ctx)
    valid = ~values.mask
    sums = np.zeros(n_groups, dtype=np.float64)
    if valid.any():
        # Two-phase float sum: morsels gather their filtered
        # (gid, weight) rows; one final bincount adds them in the
        # original row order, so the result cannot depend on the chunk
        # size (float addition is order-, not grouping-, sensitive).
        partials = _morsel_agg(
            ctx, gids,
            lambda start, stop: (
                gids[start:stop][valid[start:stop]],
                values.data[start:stop][valid[start:stop]].astype(
                    np.float64)),
            "aggregate:sum")
        if partials is not None:
            sums = np.bincount(
                np.concatenate([p[0] for p in partials]),
                weights=np.concatenate([p[1] for p in partials]),
                minlength=n_groups)
        else:
            sums = np.bincount(
                gids[valid],
                weights=values.data[valid].astype(np.float64),
                minlength=n_groups)
    mask = counts == 0
    if result_type is SqlType.INTEGER:
        data = np.round(sums).astype(np.int64)
    else:
        data = sums
    return Column(result_type, data, mask)


def _extreme(values: Column, gids: np.ndarray, n_groups: int,
             smallest: bool, ctx=None) -> Column:
    valid = ~values.mask
    counts = _valid_counts(values, gids, n_groups, ctx)
    mask = counts == 0
    if values.sql_type is SqlType.TEXT:
        # Object dtype: no ufunc.at — loop over valid rows.
        best: list = [None] * n_groups
        for i in np.nonzero(valid)[0]:
            gid = gids[i]
            value = values.data[i]
            if best[gid] is None or (smallest and value < best[gid]) \
                    or (not smallest and value > best[gid]):
                best[gid] = value
        return Column.from_values(SqlType.TEXT, best)
    result_type = values.sql_type
    if result_type is SqlType.NULL:
        result_type = SqlType.FLOAT
    if result_type is SqlType.BOOLEAN:
        init = True if smallest else False
        data = np.full(n_groups, init, dtype=np.bool_)
    elif result_type is SqlType.INTEGER:
        init = np.iinfo(np.int64).max if smallest else np.iinfo(np.int64).min
        data = np.full(n_groups, init, dtype=np.int64)
    else:
        init = np.inf if smallest else -np.inf
        data = np.full(n_groups, init, dtype=np.float64)
    if valid.any():
        reducer = np.minimum if smallest else np.maximum

        def _partial(start: int, stop: int) -> np.ndarray:
            part = data.copy()
            keep = valid[start:stop]
            reducer.at(part, gids[start:stop][keep],
                       values.data[start:stop][keep])
            return part

        partials = _morsel_agg(ctx, gids, _partial, "aggregate:extreme")
        if partials is not None:
            # min/max are associative and commutative (NaN propagates
            # through either way), so merging per-morsel group extremes
            # is exact — no ordering caveat like the float sum.
            for part in partials:
                data = reducer(data, part)
        else:
            reducer.at(data, gids[valid], values.data[valid])
    # Give empty groups an in-band placeholder consistent with the mask.
    if mask.any():
        data[mask] = 0
    return Column(result_type, data, mask)


def internal_aggregate_fields(node, child_fields):
    """Field descriptors for the key/aggregate slots of an Aggregate node."""
    from ..plan.logical import Field
    fields = []
    for key_expr, slot in node.keys:
        fields.append(Field(None, slot, infer_type(key_expr, child_fields)))
    for spec in node.aggregates:
        fields.append(Field(None, spec.name,
                            infer_type(spec.call, child_fields)))
    return tuple(fields)
