"""Grouped aggregate kernels with SQL NULL semantics.

SUM/MIN/MAX/AVG ignore NULL inputs and return NULL for groups with no
valid input; COUNT returns 0.  COUNT(*) counts rows regardless of NULLs.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError, TypeCheckError
from ..plan.binding import infer_type
from ..sql import ast
from ..storage import Column
from ..types import SqlType
from .expressions import evaluate
from .frame import Frame
from .kernels import factorize


def compute_aggregate(call: ast.FunctionCall, frame: Frame,
                      gids: np.ndarray, n_groups: int) -> Column:
    """Evaluate one aggregate call per group over ``frame``."""
    name = call.name
    if name == "count":
        return _count(call, frame, gids, n_groups)
    if len(call.args) != 1:
        raise TypeCheckError(f"{name.upper()} expects exactly one argument")
    if call.distinct:
        raise ExecutionError(
            f"DISTINCT is only supported inside COUNT, not {name.upper()}")
    values = evaluate(call.args[0], frame)
    if name == "sum":
        return _sum(values, gids, n_groups)
    if name == "avg":
        total = _sum(values.cast(SqlType.FLOAT), gids, n_groups)
        counts = _valid_counts(values, gids, n_groups)
        data = np.zeros(n_groups, dtype=np.float64)
        nonzero = counts > 0
        data[nonzero] = total.data[nonzero] / counts[nonzero]
        return Column(SqlType.FLOAT, data, counts == 0)
    if name in ("min", "max"):
        return _extreme(values, gids, n_groups, smallest=(name == "min"))
    raise ExecutionError(f"unknown aggregate: {name!r}")


def _count(call: ast.FunctionCall, frame: Frame, gids: np.ndarray,
           n_groups: int) -> Column:
    if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
        data = np.bincount(gids, minlength=n_groups).astype(np.int64)
        return Column(SqlType.INTEGER, data,
                      np.zeros(n_groups, dtype=np.bool_))
    if len(call.args) != 1:
        raise TypeCheckError("COUNT expects exactly one argument")
    values = evaluate(call.args[0], frame)
    if call.distinct:
        codes, _ = factorize(values, nulls_match=False)
        valid = codes >= 0
        if not valid.any():
            data = np.zeros(n_groups, dtype=np.int64)
        else:
            pairs = gids[valid] * (codes.max() + 1) + codes[valid]
            unique_pairs = np.unique(pairs)
            pair_gids = unique_pairs // (codes.max() + 1)
            data = np.bincount(pair_gids,
                               minlength=n_groups).astype(np.int64)
        return Column(SqlType.INTEGER, data,
                      np.zeros(n_groups, dtype=np.bool_))
    data = _valid_counts(values, gids, n_groups).astype(np.int64)
    return Column(SqlType.INTEGER, data, np.zeros(n_groups, dtype=np.bool_))


def _valid_counts(values: Column, gids: np.ndarray,
                  n_groups: int) -> np.ndarray:
    valid = ~values.mask
    if not valid.any():
        return np.zeros(n_groups, dtype=np.int64)
    return np.bincount(gids[valid], minlength=n_groups).astype(np.int64)


def _sum(values: Column, gids: np.ndarray, n_groups: int) -> Column:
    if not values.sql_type.is_numeric and values.sql_type is not SqlType.NULL:
        raise TypeCheckError("SUM requires a numeric argument")
    result_type = (SqlType.INTEGER if values.sql_type is SqlType.INTEGER
                   else SqlType.FLOAT)
    counts = _valid_counts(values, gids, n_groups)
    valid = ~values.mask
    sums = np.zeros(n_groups, dtype=np.float64)
    if valid.any():
        sums = np.bincount(gids[valid],
                           weights=values.data[valid].astype(np.float64),
                           minlength=n_groups)
    mask = counts == 0
    if result_type is SqlType.INTEGER:
        data = np.round(sums).astype(np.int64)
    else:
        data = sums
    return Column(result_type, data, mask)


def _extreme(values: Column, gids: np.ndarray, n_groups: int,
             smallest: bool) -> Column:
    valid = ~values.mask
    counts = _valid_counts(values, gids, n_groups)
    mask = counts == 0
    if values.sql_type is SqlType.TEXT:
        # Object dtype: no ufunc.at — loop over valid rows.
        best: list = [None] * n_groups
        for i in np.nonzero(valid)[0]:
            gid = gids[i]
            value = values.data[i]
            if best[gid] is None or (smallest and value < best[gid]) \
                    or (not smallest and value > best[gid]):
                best[gid] = value
        return Column.from_values(SqlType.TEXT, best)
    result_type = values.sql_type
    if result_type is SqlType.NULL:
        result_type = SqlType.FLOAT
    if result_type is SqlType.BOOLEAN:
        init = True if smallest else False
        data = np.full(n_groups, init, dtype=np.bool_)
    elif result_type is SqlType.INTEGER:
        init = np.iinfo(np.int64).max if smallest else np.iinfo(np.int64).min
        data = np.full(n_groups, init, dtype=np.int64)
    else:
        init = np.inf if smallest else -np.inf
        data = np.full(n_groups, init, dtype=np.float64)
    if valid.any():
        reducer = np.minimum if smallest else np.maximum
        reducer.at(data, gids[valid], values.data[valid])
    # Give empty groups an in-band placeholder consistent with the mask.
    if mask.any():
        data[mask] = 0
    return Column(result_type, data, mask)


def internal_aggregate_fields(node, child_fields):
    """Field descriptors for the key/aggregate slots of an Aggregate node."""
    from ..plan.logical import Field
    fields = []
    for key_expr, slot in node.keys:
        fields.append(Field(None, slot, infer_type(key_expr, child_fields)))
    for spec in node.aggregates:
        fields.append(Field(None, spec.name,
                            infer_type(spec.call, child_fields)))
    return tuple(fields)
