"""Runtime row batches.

A :class:`Frame` is the value flowing between physical operators: an
ordered set of columns labelled with :class:`~repro.plan.logical.Field`
descriptors.  Resolution of column references against a frame uses exactly
the same rules as bind-time resolution (see :mod:`repro.plan.binding`), so
anything the builder accepted will resolve at run time.

This module also owns the typed columnar **wire format**
(:func:`table_to_wire` / :func:`table_from_wire`) used by the MPP
exchange operators: a batch decomposes into a small picklable header
plus one raw ndarray block per column buffer (data and validity mask),
so the transport can ship the blocks however it likes — inline over a
pipe, or zero-copy through shared memory — without re-serializing.
"""

from __future__ import annotations

import pickle
from typing import Sequence

import numpy as np

from ..errors import ExecutionError
from ..plan.binding import resolve_column
from ..plan.logical import Field
from ..sql import ast
from ..storage import Column, ColumnSchema, Schema, Table
from ..types import SqlType


class Frame:
    """Columns + field labels + an explicit row count.

    The explicit count matters for zero-column frames (the one-row "dual"
    frame behind ``SELECT 1``).
    """

    __slots__ = ("fields", "columns", "num_rows")

    def __init__(self, fields: Sequence[Field], columns: Sequence[Column],
                 num_rows: int | None = None):
        fields = tuple(fields)
        columns = list(columns)
        if len(fields) != len(columns):
            raise ExecutionError("frame fields/columns length mismatch")
        if num_rows is None:
            if not columns:
                raise ExecutionError(
                    "zero-column frame needs an explicit row count")
            num_rows = len(columns[0])
        for column in columns:
            if len(column) != num_rows:
                raise ExecutionError("ragged frame columns")
        self.fields = fields
        self.columns = columns
        self.num_rows = num_rows

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_table(cls, table: Table, fields: Sequence[Field]) -> "Frame":
        """Label a stored table's columns with the plan's fields.

        Types are reconciled: a stored column whose type drifted (e.g. an
        all-NULL column typed NULL) is cast to the declared field type.
        """
        fields = tuple(fields)
        if len(fields) != len(table.columns):
            raise ExecutionError(
                f"stored result has {len(table.columns)} columns, "
                f"plan expects {len(fields)}")
        columns = []
        for field, column in zip(fields, table.columns):
            if column.sql_type is not field.sql_type:
                column = column.cast(field.sql_type)
            columns.append(column)
        return cls(fields, columns, table.num_rows)

    @classmethod
    def dual(cls) -> "Frame":
        """The one-row, zero-column frame behind SELECT-without-FROM."""
        return cls((), [], num_rows=1)

    # -- access ---------------------------------------------------------------

    def resolve(self, ref: ast.ColumnRef) -> Column:
        return self.columns[resolve_column(self.fields, ref)]

    def to_table(self, names: Sequence[str] | None = None) -> Table:
        """Materialize as a Table, optionally renaming columns.

        SQL allows duplicate output column names (``SELECT a.x, b.x``);
        Table schemas do not, so duplicates are suffixed ``_2``, ``_3``…
        """
        if names is None:
            names = [f.name for f in self.fields]
            seen: dict[str, int] = {}
            deduped = []
            for name in names:
                count = seen.get(name, 0) + 1
                seen[name] = count
                deduped.append(name if count == 1 else f"{name}_{count}")
            names = deduped
        schema = Schema(tuple(
            ColumnSchema(name, column.sql_type)
            for name, column in zip(names, self.columns)))
        return Table(schema, list(self.columns))

    # -- transforms -------------------------------------------------------------

    def take(self, indices: np.ndarray) -> "Frame":
        return Frame(self.fields, [c.take(indices) for c in self.columns],
                     num_rows=len(indices))

    def filter(self, keep: np.ndarray) -> "Frame":
        count = int(keep.sum())
        return Frame(self.fields, [c.filter(keep) for c in self.columns],
                     num_rows=count)

    def slice(self, start: int, stop: int) -> "Frame":
        stop = min(stop, self.num_rows)
        start = min(start, stop)
        return Frame(self.fields,
                     [c.slice(start, stop) for c in self.columns],
                     num_rows=stop - start)

    def concat(self, other: "Frame") -> "Frame":
        if len(self.fields) != len(other.fields):
            raise ExecutionError("cannot concat frames of different widths")
        columns = [a.concat(b)
                   for a, b in zip(self.columns, other.columns)]
        fields = tuple(
            Field(f.qualifier, f.name, c.sql_type)
            for f, c in zip(self.fields, columns))
        return Frame(fields, columns, self.num_rows + other.num_rows)

    def join_pairs(self, other: "Frame", left_idx: np.ndarray,
                   right_idx: np.ndarray) -> "Frame":
        """Gather a joined frame from index pairs; -1 emits NULL (outer pad)."""
        columns = [c.take(left_idx) for c in self.columns]
        columns += [c.take(right_idx) for c in other.columns]
        fields = (*self.fields, *other.fields)
        return Frame(fields, columns, len(left_idx))


# ---------------------------------------------------------------------------
# Columnar wire format (MPP exchange batches)
# ---------------------------------------------------------------------------
#
# A wire batch is ``(meta, blocks)``: ``meta`` is a tiny plain dict
# (column names/types, row count, per-column encoding) and ``blocks`` is
# a flat list of buffers — for a fixed-width column its data ndarray
# followed by its mask ndarray; for a TEXT (object-dtype) column a
# pickled bytes payload followed by the mask ndarray.  Keeping the
# buffers out of the header lets the transport choose per block between
# inline pickling (small) and a shared-memory handle (large) without
# this layer knowing.

_WIRE_NDARRAY = "ndarray"
_WIRE_PICKLE = "pickle"


def table_to_wire(table: Table) -> tuple[dict, list]:
    """Decompose a table into a picklable header and raw buffer blocks."""
    meta = {
        "names": [c.name for c in table.schema.columns],
        "types": [c.sql_type.name for c in table.schema.columns],
        "num_rows": table.num_rows,
        "encodings": [],
    }
    blocks: list = []
    for column in table.columns:
        if column.data.dtype == object:
            meta["encodings"].append(_WIRE_PICKLE)
            blocks.append(pickle.dumps(column.data,
                                       protocol=pickle.HIGHEST_PROTOCOL))
        else:
            meta["encodings"].append(_WIRE_NDARRAY)
            blocks.append(np.ascontiguousarray(column.data))
        blocks.append(np.ascontiguousarray(column.mask))
    return meta, blocks


def table_from_wire(meta: dict, blocks: list) -> Table:
    """Rebuild a table from its wire decomposition."""
    schema = Schema(tuple(
        ColumnSchema(name, SqlType[type_name])
        for name, type_name in zip(meta["names"], meta["types"])))
    columns = []
    for i, encoding in enumerate(meta["encodings"]):
        data, mask = blocks[2 * i], blocks[2 * i + 1]
        if encoding == _WIRE_PICKLE:
            data = pickle.loads(data)
        elif encoding != _WIRE_NDARRAY:
            raise ExecutionError(f"unknown wire encoding {encoding!r}")
        columns.append(Column.from_numpy(
            schema.columns[i].sql_type, data, mask))
    return Table(schema, columns)
