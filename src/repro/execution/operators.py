"""Physical execution of logical plans.

The executor interprets a logical plan tree bottom-up, producing a
:class:`~repro.execution.frame.Frame` per node.  Join strategy is chosen
per node: hash join for equi-conditions (with residual predicates applied
pair-wise before outer padding), nested-loop (cross + filter) otherwise.

Everything is materialized — the paper's engine likewise materializes each
step of the rewritten iterative plan, which is what makes the rename
optimization meaningful.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError, PlanError
from ..plan.logical import (
    Field,
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalOp,
    LogicalProject,
    LogicalRename,
    LogicalScan,
    LogicalSemiJoin,
    LogicalSetDifference,
    LogicalSort,
    LogicalTempScan,
    LogicalUnion,
    LogicalValues,
)
from ..sql import ast
from ..storage import Column, Table
from ..types import SqlType
from .aggregate import compute_aggregate, internal_aggregate_fields
from .context import ExecutionContext
from .expressions import evaluate, evaluate_predicate
from .frame import Frame
from .kernels import (
    build_probe_index,
    distinct_indices,
    encode_keys,
    equi_join_pairs,
    group_ids,
    sort_indices,
)
from .morsel import run_morsels


def execute_plan(op: LogicalOp, ctx: ExecutionContext) -> Frame:
    """Evaluate a logical plan and return its result frame."""
    if isinstance(op, LogicalScan):
        table = ctx.catalog.get(op.table_name)
        ctx.stats.rows_scanned += table.num_rows
        return Frame.from_table(table, op.fields)
    if isinstance(op, LogicalTempScan):
        table = ctx.registry.fetch(op.result_name)
        ctx.stats.rows_scanned += table.num_rows
        return Frame.from_table(table, op.fields)
    if isinstance(op, LogicalValues):
        return _execute_values(op)
    if isinstance(op, LogicalFilter):
        child = execute_plan(op.child, ctx)
        return child.filter(_execute_filter_mask(op, child, ctx))
    if isinstance(op, LogicalProject):
        child = execute_plan(op.child, ctx)
        return _execute_project(op, child, ctx)
    if isinstance(op, LogicalRename):
        child = execute_plan(op.child, ctx)
        columns = [c if c.sql_type is f.sql_type else c.cast(f.sql_type)
                   for c, f in zip(child.columns, op.fields)]
        return Frame(op.fields, columns, child.num_rows)
    if isinstance(op, LogicalJoin):
        return _execute_join(op, ctx)
    if isinstance(op, LogicalSemiJoin):
        return _execute_semi_join(op, ctx)
    if isinstance(op, LogicalSetDifference):
        return _execute_set_difference(op, ctx)
    if isinstance(op, LogicalAggregate):
        return _execute_aggregate(op, ctx)
    if isinstance(op, LogicalUnion):
        left = execute_plan(op.left, ctx)
        right = execute_plan(op.right, ctx)
        combined = left.concat(right)
        combined = Frame(op.fields, combined.columns, combined.num_rows)
        if op.all:
            return combined
        keep = distinct_indices(combined.columns)
        return combined.take(keep)
    if isinstance(op, LogicalDistinct):
        child = execute_plan(op.child, ctx)
        if not child.columns:
            return child.slice(0, min(1, child.num_rows))
        keep = distinct_indices(child.columns)
        return child.take(keep)
    if isinstance(op, LogicalSort):
        child = execute_plan(op.child, ctx)
        keys = [evaluate(expr, child) for expr, _ in op.keys]
        ascending = [asc for _, asc in op.keys]
        order = sort_indices(keys, ascending,
                             cache=ctx.active_kernel_cache())
        return child.take(order)
    if isinstance(op, LogicalLimit):
        child = execute_plan(op.child, ctx)
        start = op.offset
        stop = child.num_rows if op.limit is None else start + op.limit
        return child.slice(start, stop)
    raise PlanError(f"unsupported logical operator: {type(op).__name__}")


def execute_to_table(op: LogicalOp, ctx: ExecutionContext,
                     names: list[str] | None = None) -> Table:
    """Run a plan and materialize its output as a Table."""
    frame = execute_plan(op, ctx)
    table = frame.to_table(names)
    ctx.stats.rows_materialized += table.num_rows
    ctx.stats.bytes_materialized += table.nbytes()
    return table


# ---------------------------------------------------------------------------
# Values / Project
# ---------------------------------------------------------------------------


def _execute_values(op: LogicalValues) -> Frame:
    if not op.fields:
        return Frame((), [], num_rows=len(op.rows))
    columns = []
    for i, field in enumerate(op.fields):
        columns.append(Column.from_values(
            field.sql_type, (row[i] for row in op.rows)))
    return Frame(op.fields, columns, len(op.rows))


def _execute_filter_mask(op: LogicalFilter, child: Frame,
                         ctx: ExecutionContext) -> np.ndarray:
    """The keep mask of a filter, morsel-split when the session opts in.

    Predicates are elementwise, so evaluating per-morsel and
    concatenating the masks in input order is bit-identical to the
    single-shot evaluation.  Compilation happens once on the
    coordinating thread; the compiled closure is pure and safe to call
    from pool workers.
    """
    if ctx.options.enable_expr_compile:
        compiled = ctx.expr_cache.get(op.predicate, child.fields, id(op))

        def keep_of(start: int, stop: int) -> np.ndarray:
            return _predicate_from_column(compiled(child.slice(start, stop)))
    else:
        def keep_of(start: int, stop: int) -> np.ndarray:
            return evaluate_predicate(op.predicate,
                                      child.slice(start, stop))

    chunks = run_morsels(ctx, child.num_rows, keep_of, label="filter")
    if chunks is None:
        return keep_of(0, child.num_rows)
    return np.concatenate(chunks)


def _execute_project(op: LogicalProject, child: Frame,
                     ctx: ExecutionContext | None = None) -> Frame:
    use_compiler = ctx is not None and ctx.options.enable_expr_compile
    evaluators = []
    for (expr, _name), field in zip(op.exprs, op.fields):
        compiled = (ctx.expr_cache.get(expr, child.fields, id(op))
                    if use_compiler else None)
        evaluators.append((expr, compiled, field))

    def project_chunk(start: int, stop: int) -> list[Column]:
        chunk = child.slice(start, stop)
        columns = []
        for expr, compiled, field in evaluators:
            column = compiled(chunk) if compiled is not None \
                else evaluate(expr, chunk)
            if column.sql_type is not field.sql_type \
                    and field.sql_type is not SqlType.NULL:
                column = column.cast(field.sql_type)
            columns.append(column)
        return columns

    chunks = run_morsels(ctx, child.num_rows, project_chunk,
                         label="project") if ctx is not None else None
    if chunks is None:
        return Frame(op.fields, project_chunk(0, child.num_rows),
                     child.num_rows)
    columns = [Column.concat_many([c[i] for c in chunks])
               for i in range(len(evaluators))]
    return Frame(op.fields, columns, child.num_rows)


def _predicate_from_column(column: Column) -> np.ndarray:
    """UNKNOWN (NULL) predicate rows drop, as in evaluate_predicate."""
    from ..errors import TypeCheckError
    if column.sql_type not in (SqlType.BOOLEAN, SqlType.NULL):
        raise TypeCheckError(
            f"predicate must be boolean, got {column.sql_type}")
    return column.data.astype(np.bool_) & ~column.mask


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------


def _refs_within(expr: ast.Expr, fields: tuple[Field, ...]) -> bool:
    """True if every column reference in expr resolves within fields."""
    from ..plan.binding import resolve_column
    from ..errors import BindError
    for node in expr.walk():
        if isinstance(node, ast.ColumnRef):
            try:
                resolve_column(fields, node)
            except BindError:
                return False
    return True


def split_conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op is ast.BinaryOperator.AND:
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[ast.Expr]) -> ast.Expr | None:
    if not conjuncts:
        return None
    result = conjuncts[0]
    for item in conjuncts[1:]:
        result = ast.BinaryOp(ast.BinaryOperator.AND, result, item)
    return result


def _extract_equi_keys(condition: ast.Expr | None,
                       left_fields: tuple[Field, ...],
                       right_fields: tuple[Field, ...]):
    """Split a join condition into equi-key pairs and residual conjuncts."""
    if condition is None:
        return [], []
    equi: list[tuple[ast.Expr, ast.Expr]] = []
    residual: list[ast.Expr] = []
    for conjunct in split_conjuncts(condition):
        if (isinstance(conjunct, ast.BinaryOp)
                and conjunct.op is ast.BinaryOperator.EQ):
            a, b = conjunct.left, conjunct.right
            if _refs_within(a, left_fields) and _refs_within(b, right_fields):
                equi.append((a, b))
                continue
            if _refs_within(b, left_fields) and _refs_within(a, right_fields):
                equi.append((b, a))
                continue
        residual.append(conjunct)
    return equi, residual


def _encode_join_sides(left_keys: list[Column], right_keys: list[Column],
                       ctx: ExecutionContext):
    """Codes for both sides of an equi join in one shared space.

    Preferred path: treat the right side as the build side — factorize it
    into per-column dictionaries (memoized by the kernel cache, so a
    loop-invariant build input is factorized and sorted once per loop)
    and binary-search the probe side against them.  Probe values absent
    from the build dictionaries cannot match and encode as -1, so the
    resulting pairs are identical to the joint-encoding fallback, which
    remains for mixed-radix overflow and the cache-off configuration.

    Returns (left_codes, right_codes, right_sorted-or-None).
    """
    from ..types import common_type
    casted_left, casted_right = [], []
    for lk, rk in zip(left_keys, right_keys):
        target = common_type(lk.sql_type, rk.sql_type)
        casted_left.append(lk if lk.sql_type is target
                           else lk.cast(target))
        casted_right.append(rk if rk.sql_type is target
                            else rk.cast(target))
    cache = ctx.active_kernel_cache()
    if cache is not None:
        index = cache.join_index(casted_right)
        if index is not None:
            return index.probe(casted_left), index.codes, index.sorted
    # Joint encoding: the concatenated key columns are ephemeral, so
    # memoizing their dictionaries would only pollute the cache.
    joint = [lk.concat(rk) for lk, rk in zip(casted_left, casted_right)]
    codes = encode_keys(joint, nulls_match=False)
    n_left = len(casted_left[0])
    return codes[:n_left], codes[n_left:], None


def _equi_pairs(equi, left: Frame, right: Frame,
                ctx: ExecutionContext) -> tuple[np.ndarray, np.ndarray]:
    left_keys = [evaluate(a, left) for a, _ in equi]
    right_keys = [evaluate(b, right) for _, b in equi]
    left_codes, right_codes, right_sorted = _encode_join_sides(
        left_keys, right_keys, ctx)
    if ctx.options.parallel_morsels and right_sorted is None:
        # Build the probe index once so every morsel shares it.
        right_sorted = build_probe_index(right_codes)

    def probe_chunk(start: int, stop: int):
        pairs_left, pairs_right = equi_join_pairs(
            left_codes[start:stop], right_codes, right_sorted)
        return pairs_left + start, pairs_right

    chunks = run_morsels(ctx, len(left_codes), probe_chunk,
                         label="join-probe")
    if chunks is None:
        return equi_join_pairs(left_codes, right_codes, right_sorted)
    # Per-morsel pairs are grouped by left row in left-row order, so
    # concatenating in morsel order preserves the global pair order.
    return (np.concatenate([c[0] for c in chunks]),
            np.concatenate([c[1] for c in chunks]))


def _execute_join(op: LogicalJoin, ctx: ExecutionContext) -> Frame:
    if op.kind is ast.JoinKind.RIGHT:
        # Mirror: RIGHT JOIN == LEFT JOIN with sides swapped, then restore
        # the original column order.
        mirrored = LogicalJoin(ast.JoinKind.LEFT, op.right, op.left,
                               op.condition)
        result = _execute_join(mirrored, ctx)
        n_right = len(op.right.fields)
        columns = result.columns[n_right:] + result.columns[:n_right]
        return Frame(op.fields, columns, result.num_rows)

    left = execute_plan(op.left, ctx)
    right = execute_plan(op.right, ctx)

    if op.kind is ast.JoinKind.CROSS:
        left_idx = np.repeat(np.arange(left.num_rows, dtype=np.int64),
                             right.num_rows)
        right_idx = np.tile(np.arange(right.num_rows, dtype=np.int64),
                            left.num_rows)
        joined = left.join_pairs(right, left_idx, right_idx)
        ctx.stats.rows_joined += joined.num_rows
        return Frame(op.fields, joined.columns, joined.num_rows)

    equi, residual = _extract_equi_keys(op.condition, left.fields,
                                        right.fields)
    if equi:
        left_idx, right_idx = _equi_pairs(equi, left, right, ctx)
    else:
        # Nested-loop join expressed as all-pairs.
        left_idx = np.repeat(np.arange(left.num_rows, dtype=np.int64),
                             right.num_rows)
        right_idx = np.tile(np.arange(right.num_rows, dtype=np.int64),
                            left.num_rows)

    pairs = left.join_pairs(right, left_idx, right_idx)
    if residual:
        keep = evaluate_predicate(conjoin(residual), pairs)
        pairs = pairs.filter(keep)
        left_idx = left_idx[keep]
        right_idx = right_idx[keep]

    if op.kind is ast.JoinKind.INNER:
        ctx.stats.rows_joined += pairs.num_rows
        return Frame(op.fields, pairs.columns, pairs.num_rows)

    # LEFT / FULL outer padding.
    matched_left = np.zeros(left.num_rows, dtype=np.bool_)
    matched_left[left_idx] = True
    pad_left = np.nonzero(~matched_left)[0]
    out_left_idx = np.concatenate([left_idx, pad_left])
    out_right_idx = np.concatenate(
        [right_idx, np.full(len(pad_left), -1, dtype=np.int64)])

    if op.kind is ast.JoinKind.FULL:
        matched_right = np.zeros(right.num_rows, dtype=np.bool_)
        matched_right[right_idx] = True
        pad_right = np.nonzero(~matched_right)[0]
        out_left_idx = np.concatenate(
            [out_left_idx, np.full(len(pad_right), -1, dtype=np.int64)])
        out_right_idx = np.concatenate([out_right_idx, pad_right])

    joined = left.join_pairs(right, out_left_idx, out_right_idx)
    ctx.stats.rows_joined += joined.num_rows
    return Frame(op.fields, joined.columns, joined.num_rows)


def _execute_semi_join(op: LogicalSemiJoin, ctx: ExecutionContext) -> Frame:
    """Semi/anti join with optional NOT IN null-awareness."""
    left = execute_plan(op.left, ctx)
    right = execute_plan(op.right, ctx)

    if op.condition is None:
        # Uncorrelated EXISTS: all or nothing.
        keep_all = right.num_rows > 0
        if keep_all != op.anti:
            return left
        return left.slice(0, 0)

    equi, residual = _extract_equi_keys(op.condition, left.fields,
                                        right.fields)
    if equi:
        left_idx, right_idx = _equi_pairs(equi, left, right, ctx)
    else:
        left_idx = np.repeat(np.arange(left.num_rows, dtype=np.int64),
                             right.num_rows)
        right_idx = np.tile(np.arange(right.num_rows, dtype=np.int64),
                            left.num_rows)

    if residual and len(left_idx):
        pairs = left.join_pairs(right, left_idx, right_idx)
        keep = evaluate_predicate(conjoin(residual), pairs)
        left_idx = left_idx[keep]

    matched = np.zeros(left.num_rows, dtype=np.bool_)
    matched[left_idx] = True
    ctx.stats.rows_joined += int(matched.sum())

    if not op.anti:
        return left.filter(matched)

    keep = ~matched
    if op.null_aware:
        # SQL NOT IN: a NULL probe, or any NULL subquery value, turns an
        # unmatched row UNKNOWN — WHERE drops it.
        if op.probe_expr is not None:
            probe = evaluate(op.probe_expr, left)
            keep &= ~probe.mask
        if op.key_expr is not None:
            key_values = evaluate(op.key_expr, right)
            if key_values.mask.any():
                keep[:] = False
    return left.filter(keep)


def _execute_set_difference(op: LogicalSetDifference,
                            ctx: ExecutionContext) -> Frame:
    """EXCEPT / INTERSECT with SQL's distinct semantics."""
    left = execute_plan(op.left, ctx)
    right = execute_plan(op.right, ctx)
    left = Frame(op.fields, [
        c.cast(f.sql_type) for c, f in zip(left.columns, op.fields)],
        left.num_rows)
    right_cast = [c.cast(f.sql_type)
                  for c, f in zip(right.columns, op.fields)]

    joint = [lc.concat(rc) for lc, rc in zip(left.columns, right_cast)]
    if not joint:
        return left.slice(0, 0)
    codes = encode_keys(joint, nulls_match=True)
    left_codes = codes[:left.num_rows]
    right_sorted = np.sort(codes[left.num_rows:])

    positions = np.searchsorted(right_sorted, left_codes)
    inside = positions < len(right_sorted)
    clipped = np.where(inside, positions, 0)
    in_right = (inside & (right_sorted[clipped] == left_codes)
                if len(right_sorted)
                else np.zeros(left.num_rows, dtype=np.bool_))
    keep = in_right if op.intersect else ~in_right
    filtered = left.filter(keep)
    if not filtered.columns:
        return filtered
    unique = distinct_indices(filtered.columns)
    return filtered.take(unique)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def _execute_aggregate(op: LogicalAggregate, ctx: ExecutionContext) -> Frame:
    child = execute_plan(op.child, ctx)

    if op.keys:
        key_columns = [evaluate(expr, child) for expr, _ in op.keys]
        codes = encode_keys(key_columns, nulls_match=True,
                            cache=ctx.active_kernel_cache())
        gids, first_index = group_ids(codes)
        n_groups = len(first_index)
        key_slots = [column.take(first_index) for column in key_columns]
    else:
        gids = np.zeros(child.num_rows, dtype=np.int64)
        n_groups = 1
        key_slots = []

    agg_slots = [compute_aggregate(spec.call, child, gids, n_groups, ctx)
                 for spec in op.aggregates]

    internal_fields = internal_aggregate_fields(op, op.child.fields)
    internal = Frame(internal_fields, key_slots + agg_slots, n_groups)
    ctx.stats.rows_aggregated += n_groups

    if op.having is not None:
        keep = evaluate_predicate(op.having, internal)
        internal = internal.filter(keep)

    columns = []
    for (expr, _name), field in zip(op.outputs, op.fields):
        column = evaluate(expr, internal)
        if column.sql_type is not field.sql_type \
                and field.sql_type is not SqlType.NULL:
            column = column.cast(field.sql_type)
        columns.append(column)
    return Frame(op.fields, columns, internal.num_rows)
