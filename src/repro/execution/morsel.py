"""Morsel-driven parallelism for columnar operators.

A *morsel* is a fixed-size contiguous row range of an operator's input
(Leis et al., "Morsel-Driven Parallelism", adapted to this engine's
materialize-everything execution model).  Operators that are elementwise
over rows — filter predicates, projections, and the probe side of a hash
equi join — split their input into morsels, evaluate each morsel
independently, and concatenate the per-morsel results in input order, so
the output is bit-identical to the single-shot evaluation by
construction.

Dispatch goes to a shared thread pool when the session opts in
(``parallel_morsels``) and the input is large enough to amortize the
per-task overhead (``morsel_min_rows``); NumPy kernels release the GIL,
so morsels genuinely overlap where cores are available.  Below the
threshold (or with the option off) the same chunked evaluation runs
inline on the calling thread — the cost-threshold fallback the scheduler
always keeps.

Worker callables must be pure with respect to engine state: they read
immutable columns and return fresh arrays.  All counter updates and span
events happen on the coordinating thread, after the pool has joined, so
``ExecutionStats`` and the tracer never see concurrent mutation.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Sequence, TypeVar

T = TypeVar("T")

# One process-wide pool, sized on first use; sessions asking for a
# different worker count than the live pool rebuild it lazily.
_pool_lock = threading.Lock()
_pool: Optional[ThreadPoolExecutor] = None
_pool_workers = 0


def _shared_pool(workers: int) -> ThreadPoolExecutor:
    global _pool, _pool_workers
    with _pool_lock:
        if _pool is None or _pool_workers != workers:
            if _pool is not None:
                _pool.shutdown(wait=False)
            _pool = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="repro-morsel")
            _pool_workers = workers
        return _pool


def morsel_ranges(num_rows: int, morsel_size: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` chunks covering ``range(num_rows)``."""
    if num_rows <= 0:
        return []
    size = max(1, int(morsel_size))
    return [(start, min(start + size, num_rows))
            for start in range(0, num_rows, size)]


def run_morsels(ctx, num_rows: int,
                fn: Callable[[int, int], T],
                label: str = "morsel") -> Optional[list[T]]:
    """Evaluate ``fn(start, stop)`` over every morsel of ``num_rows``.

    Returns the per-morsel results in input order, or ``None`` when the
    session has not opted into morsel execution or the input is too
    small to chunk — the caller then runs its single-shot path.  ``fn``
    must be pure (no ctx/stats/tracer access); accounting happens here,
    on the coordinating thread.
    """
    options = ctx.options
    if not options.parallel_morsels:
        return None
    ranges = morsel_ranges(num_rows, options.morsel_size)
    if len(ranges) <= 1:
        return None
    workers = max(1, int(options.morsel_workers))
    parallel = workers > 1 and num_rows >= options.morsel_min_rows
    if parallel:
        pool = _shared_pool(workers)
        results = list(pool.map(lambda r: fn(r[0], r[1]), ranges))
    else:
        results = [fn(start, stop) for start, stop in ranges]

    ctx.stats.morsel_batches += len(ranges)
    ctx.stats.morsel_rows += num_rows
    if parallel:
        ctx.stats.morsel_parallel_batches += len(ranges)
    tracer = ctx.tracer
    if tracer.enabled:
        tracer.event(f"morsels:{label}", kind="morsel",
                     morsels=len(ranges), rows=num_rows,
                     workers=(workers if parallel else 1),
                     parallel=parallel)
    return results


def split_columns(results: Sequence, index: int) -> list:
    """Column ``index`` of every per-morsel result tuple."""
    return [r[index] for r in results]
