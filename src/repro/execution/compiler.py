"""Expression compilation — the engine's analog of MPPDB's LLVM codegen.

The paper's pipeline "further optimize[s] through LLVM code generation"
before execution (§III).  The Python analog: compile an expression tree
once into a closure graph with column indices pre-resolved and operator
dispatch pre-bound, so the per-iteration cost of an iterative CTE skips
tree walking and name resolution entirely.  Compiled closures are cached
per (expression, schema) on the execution context — the same Project node
evaluated 25 times in a loop compiles once.

Every compiled closure is semantically identical to the interpreter in
:mod:`repro.execution.expressions`; ``tests/test_compiler.py`` checks the
two against each other (including property-based comparisons).  Nodes the
compiler does not handle fall back to the interpreter transparently.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..plan.binding import resolve_column
from ..plan.logical import Field
from ..sql import ast
from ..storage import Column
from ..types import SqlType, common_type
from .frame import Frame

# A compiled expression: Frame -> Column.
Compiled = Callable[[Frame], Column]


def compile_expression(expr: ast.Expr,
                       fields: tuple[Field, ...]) -> Compiled:
    """Compile ``expr`` for frames with exactly these fields."""
    compiled = _compile(expr, fields)
    if compiled is not None:
        return compiled
    # Fallback: the interpreter (always correct, never fails to apply).
    from .expressions import evaluate
    return lambda frame: evaluate(expr, frame)


def _compile(expr: ast.Expr,
             fields: tuple[Field, ...]) -> Optional[Compiled]:
    if isinstance(expr, ast.ColumnRef):
        index = resolve_column(fields, expr)
        return lambda frame: frame.columns[index]

    if isinstance(expr, ast.Literal):
        value = expr.value
        if value is None:
            return lambda frame: Column.nulls(SqlType.NULL,
                                              frame.num_rows)
        if isinstance(value, bool):
            sql_type = SqlType.BOOLEAN
        elif isinstance(value, int):
            sql_type = SqlType.INTEGER
        elif isinstance(value, float):
            sql_type = SqlType.FLOAT
        elif isinstance(value, str):
            sql_type = SqlType.TEXT
        else:
            return None
        return lambda frame: Column.constant(sql_type, value,
                                             frame.num_rows)

    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, fields)

    if isinstance(expr, ast.UnaryOp):
        operand = _compile(expr.operand, fields)
        if operand is None:
            return None
        if expr.op is ast.UnaryOperator.NOT:
            def negate(frame: Frame) -> Column:
                value = operand(frame)
                data = ~value.data.astype(np.bool_) & ~value.mask
                return Column(SqlType.BOOLEAN, data, value.mask.copy())
            return negate
        if expr.op is ast.UnaryOperator.NEG:
            def minus(frame: Frame) -> Column:
                value = operand(frame)
                return Column(value.sql_type, -value.data,
                              value.mask.copy())
            return minus
        return operand  # unary plus

    if isinstance(expr, ast.IsNull):
        operand = _compile(expr.operand, fields)
        if operand is None:
            return None
        negated = expr.negated

        def is_null(frame: Frame) -> Column:
            value = operand(frame)
            data = ~value.mask if negated else value.mask.copy()
            return Column(SqlType.BOOLEAN, data,
                          np.zeros(frame.num_rows, dtype=np.bool_))
        return is_null

    # CASE, CAST, function calls, IN, BETWEEN: interpreter fallback
    # (they are either rare in hot loops or inherently branchy).
    return None


_ARITH_OPS = {
    ast.BinaryOperator.ADD: np.add,
    ast.BinaryOperator.SUB: np.subtract,
    ast.BinaryOperator.MUL: np.multiply,
}

_COMPARE_OPS = {
    ast.BinaryOperator.EQ: np.equal,
    ast.BinaryOperator.NE: np.not_equal,
    ast.BinaryOperator.LT: np.less,
    ast.BinaryOperator.LE: np.less_equal,
    ast.BinaryOperator.GT: np.greater,
    ast.BinaryOperator.GE: np.greater_equal,
}


def _static_type(expr: ast.Expr,
                 fields: tuple[Field, ...]) -> Optional[SqlType]:
    from ..errors import ReproError
    from ..plan.binding import infer_type
    try:
        return infer_type(expr, fields)
    except ReproError:
        return None


def _compile_binary(expr: ast.BinaryOp,
                    fields: tuple[Field, ...]) -> Optional[Compiled]:
    op = expr.op
    left = _compile(expr.left, fields)
    right = _compile(expr.right, fields)
    if left is None or right is None:
        return None

    if op in _ARITH_OPS:
        left_type = _static_type(expr.left, fields)
        right_type = _static_type(expr.right, fields)
        if left_type is None or right_type is None:
            return None
        try:
            result_type = common_type(left_type, right_type)
        except Exception:
            return None
        if not result_type.is_numeric:
            return None
        ufunc = _ARITH_OPS[op]
        dtype = result_type.numpy_dtype

        def arithmetic(frame: Frame) -> Column:
            a = left(frame)
            b = right(frame)
            data = ufunc(a.data.astype(dtype, copy=False),
                         b.data.astype(dtype, copy=False))
            return Column(result_type, data, a.mask | b.mask)
        return arithmetic

    if op in _COMPARE_OPS:
        left_type = _static_type(expr.left, fields)
        right_type = _static_type(expr.right, fields)
        if left_type is None or right_type is None:
            return None
        if not (left_type.is_numeric or left_type is SqlType.NULL) \
                or not (right_type.is_numeric
                        or right_type is SqlType.NULL):
            return None  # text comparison: interpreter handles carefully
        ufunc = _COMPARE_OPS[op]

        def compare(frame: Frame) -> Column:
            a = left(frame)
            b = right(frame)
            mask = a.mask | b.mask
            data = np.zeros(frame.num_rows, dtype=np.bool_)
            valid = ~mask
            if valid.any():
                data[valid] = ufunc(a.data[valid], b.data[valid])
            return Column(SqlType.BOOLEAN, data, mask)
        return compare

    if op is ast.BinaryOperator.AND:
        def kleene_and(frame: Frame) -> Column:
            a = left(frame)
            b = right(frame)
            a_true = ~a.mask & a.data.astype(np.bool_)
            b_true = ~b.mask & b.data.astype(np.bool_)
            a_false = ~a.mask & ~a.data.astype(np.bool_)
            b_false = ~b.mask & ~b.data.astype(np.bool_)
            true = a_true & b_true
            false = a_false | b_false
            return Column(SqlType.BOOLEAN, true, ~(true | false))
        return kleene_and

    if op is ast.BinaryOperator.OR:
        def kleene_or(frame: Frame) -> Column:
            a = left(frame)
            b = right(frame)
            a_true = ~a.mask & a.data.astype(np.bool_)
            b_true = ~b.mask & b.data.astype(np.bool_)
            a_false = ~a.mask & ~a.data.astype(np.bool_)
            b_false = ~b.mask & ~b.data.astype(np.bool_)
            true = a_true | b_true
            false = a_false & b_false
            return Column(SqlType.BOOLEAN, true, ~(true | false))
        return kleene_or

    # Division/modulo raise on zero divisors; the interpreter's error
    # handling is authoritative there.
    return None


class ExpressionCache:
    """Per-execution cache of compiled expressions.

    Keyed by (expression identity, fields identity): logical plans are
    immutable once built, so the same Project node re-executed across
    loop iterations hits the cache.
    """

    def __init__(self) -> None:
        self._cache: dict[tuple[int, int], Compiled] = {}
        self.compilations = 0
        self.hits = 0

    def get(self, expr: ast.Expr, fields: tuple[Field, ...],
            node_key: int) -> Compiled:
        key = (id(expr), node_key)
        compiled = self._cache.get(key)
        if compiled is not None:
            self.hits += 1
            return compiled
        compiled = compile_expression(expr, fields)
        self._cache[key] = compiled
        self.compilations += 1
        return compiled
