"""Vectorized expression evaluation over frames.

Implements SQL scalar semantics — three-valued logic, NULL propagation,
PostgreSQL-style integer division and modulo — entirely with numpy
operations on (data, mask) column pairs.  The scalar reference semantics
live in :mod:`repro.types.values`; property-based tests assert the two
agree.
"""

from __future__ import annotations

import math
import re
from typing import Callable

import numpy as np

from ..errors import BindError, ExecutionError, TypeCheckError
from ..plan.binding import SCALAR_FUNCTIONS, infer_type
from ..sql import ast
from ..storage import Column
from ..types import SqlType, common_type
from .frame import Frame


def evaluate(expr: ast.Expr, frame: Frame) -> Column:
    """Evaluate ``expr`` against every row of ``frame``."""
    if isinstance(expr, ast.Literal):
        return _literal_column(expr.value, frame.num_rows)
    if isinstance(expr, ast.ColumnRef):
        return frame.resolve(expr)
    if isinstance(expr, ast.BinaryOp):
        return _binary(expr, frame)
    if isinstance(expr, ast.UnaryOp):
        return _unary(expr, frame)
    if isinstance(expr, ast.IsNull):
        operand = evaluate(expr.operand, frame)
        data = ~operand.mask if expr.negated else operand.mask.copy()
        return Column(SqlType.BOOLEAN, data,
                      np.zeros(frame.num_rows, dtype=np.bool_))
    if isinstance(expr, ast.InList):
        return _in_list(expr, frame)
    if isinstance(expr, ast.Between):
        lowered = ast.BinaryOp(
            ast.BinaryOperator.AND,
            ast.BinaryOp(ast.BinaryOperator.GE, expr.operand, expr.low),
            ast.BinaryOp(ast.BinaryOperator.LE, expr.operand, expr.high))
        result = evaluate(lowered, frame)
        if expr.negated:
            return _not(result)
        return result
    if isinstance(expr, ast.Case):
        return _case(expr, frame)
    if isinstance(expr, ast.Cast):
        from ..types import type_from_name
        operand = evaluate(expr.operand, frame)
        return operand.cast(type_from_name(expr.type_name))
    if isinstance(expr, ast.FunctionCall):
        return _call(expr, frame)
    if isinstance(expr, ast.Star):
        raise BindError("'*' is not valid in a scalar expression")
    raise ExecutionError(
        f"cannot evaluate expression node {type(expr).__name__}")


def evaluate_predicate(expr: ast.Expr, frame: Frame) -> np.ndarray:
    """Evaluate a WHERE/ON/HAVING predicate: UNKNOWN (NULL) rows drop."""
    column = evaluate(expr, frame)
    if column.sql_type not in (SqlType.BOOLEAN, SqlType.NULL):
        raise TypeCheckError(
            f"predicate must be boolean, got {column.sql_type}")
    return column.data.astype(np.bool_) & ~column.mask


# ---------------------------------------------------------------------------
# Literals
# ---------------------------------------------------------------------------


def _literal_column(value, count: int) -> Column:
    if value is None:
        return Column.nulls(SqlType.NULL, count)
    if isinstance(value, bool):
        return Column.constant(SqlType.BOOLEAN, value, count)
    if isinstance(value, int):
        return Column.constant(SqlType.INTEGER, value, count)
    if isinstance(value, float):
        return Column.constant(SqlType.FLOAT, value, count)
    if isinstance(value, str):
        return Column.constant(SqlType.TEXT, value, count)
    raise ExecutionError(f"unsupported literal: {value!r}")


# ---------------------------------------------------------------------------
# Binary operators
# ---------------------------------------------------------------------------


_ARITHMETIC = {
    ast.BinaryOperator.ADD, ast.BinaryOperator.SUB,
    ast.BinaryOperator.MUL, ast.BinaryOperator.DIV, ast.BinaryOperator.MOD,
}


def _binary(expr: ast.BinaryOp, frame: Frame) -> Column:
    op = expr.op
    if op is ast.BinaryOperator.AND:
        return _kleene_and(evaluate(expr.left, frame),
                           evaluate(expr.right, frame))
    if op is ast.BinaryOperator.OR:
        return _kleene_or(evaluate(expr.left, frame),
                          evaluate(expr.right, frame))
    left = evaluate(expr.left, frame)
    right = evaluate(expr.right, frame)
    if op in _ARITHMETIC:
        return _arithmetic(op, left, right)
    if op.is_comparison:
        return _comparison(op, left, right)
    if op is ast.BinaryOperator.CONCAT:
        return _concat(left, right)
    if op is ast.BinaryOperator.LIKE:
        return _like(left, right)
    raise ExecutionError(f"unsupported binary operator: {op}")


def _arithmetic(op: ast.BinaryOperator, left: Column,
                right: Column) -> Column:
    result_type = common_type(left.sql_type, right.sql_type)
    if result_type is SqlType.NULL:
        # NULL op NULL — type as FLOAT so storage has a dtype.
        result_type = SqlType.FLOAT
    if not result_type.is_numeric:
        raise TypeCheckError(
            f"operator {op.value} requires numeric operands")
    left = left.cast(result_type)
    right = right.cast(result_type)
    mask = left.mask | right.mask
    a, b = left.data, right.data
    valid = ~mask

    if op is ast.BinaryOperator.ADD:
        data = a + b
    elif op is ast.BinaryOperator.SUB:
        data = a - b
    elif op is ast.BinaryOperator.MUL:
        data = a * b
    elif op is ast.BinaryOperator.DIV:
        _check_zero_divisor(b, valid, "division by zero")
        if result_type is SqlType.INTEGER:
            # PostgreSQL integer division truncates toward zero.
            safe_b = np.where(b == 0, 1, b)
            data = np.fix(a / safe_b).astype(np.int64)
        else:
            safe_b = np.where(b == 0.0, 1.0, b)
            data = a / safe_b
    else:  # MOD
        _check_zero_divisor(b, valid, "modulo by zero")
        safe_b = np.where(b == 0, 1, b)
        data = np.fmod(a, safe_b)
    return Column(result_type, data, mask)


def _check_zero_divisor(divisor: np.ndarray, valid: np.ndarray,
                        message: str) -> None:
    if valid.any() and (divisor[valid] == 0).any():
        raise ExecutionError(message)


def _comparison(op: ast.BinaryOperator, left: Column,
                right: Column) -> Column:
    target = common_type(left.sql_type, right.sql_type)
    if target is not SqlType.NULL:
        left = left.cast(target)
        right = right.cast(target)
    mask = left.mask | right.mask
    count = len(left)
    data = np.zeros(count, dtype=np.bool_)
    valid = ~mask
    if valid.any():
        a = left.data[valid]
        b = right.data[valid]
        if op is ast.BinaryOperator.EQ:
            out = a == b
        elif op is ast.BinaryOperator.NE:
            out = a != b
        elif op is ast.BinaryOperator.LT:
            out = a < b
        elif op is ast.BinaryOperator.LE:
            out = a <= b
        elif op is ast.BinaryOperator.GT:
            out = a > b
        else:
            out = a >= b
        data[valid] = np.asarray(out, dtype=np.bool_)
    return Column(SqlType.BOOLEAN, data, mask)


def _kleene_and(left: Column, right: Column) -> Column:
    l_true = ~left.mask & left.data.astype(np.bool_)
    r_true = ~right.mask & right.data.astype(np.bool_)
    l_false = ~left.mask & ~left.data.astype(np.bool_)
    r_false = ~right.mask & ~right.data.astype(np.bool_)
    true = l_true & r_true
    false = l_false | r_false
    mask = ~(true | false)
    return Column(SqlType.BOOLEAN, true, mask)


def _kleene_or(left: Column, right: Column) -> Column:
    l_true = ~left.mask & left.data.astype(np.bool_)
    r_true = ~right.mask & right.data.astype(np.bool_)
    l_false = ~left.mask & ~left.data.astype(np.bool_)
    r_false = ~right.mask & ~right.data.astype(np.bool_)
    true = l_true | r_true
    false = l_false & r_false
    mask = ~(true | false)
    return Column(SqlType.BOOLEAN, true, mask)


def _not(column: Column) -> Column:
    return Column(SqlType.BOOLEAN,
                  ~column.data.astype(np.bool_) & ~column.mask,
                  column.mask.copy())


def _unary(expr: ast.UnaryOp, frame: Frame) -> Column:
    operand = evaluate(expr.operand, frame)
    if expr.op is ast.UnaryOperator.NOT:
        if operand.sql_type not in (SqlType.BOOLEAN, SqlType.NULL):
            raise TypeCheckError("NOT requires a boolean operand")
        return _not(operand)
    if not operand.sql_type.is_numeric and operand.sql_type is not SqlType.NULL:
        raise TypeCheckError(f"unary {expr.op.value} requires a number")
    if expr.op is ast.UnaryOperator.NEG:
        return Column(operand.sql_type, -operand.data, operand.mask.copy())
    return operand


def _in_list(expr: ast.InList, frame: Frame) -> Column:
    # x IN (a, b, c)  ==  x = a OR x = b OR x = c  (three-valued).
    result: Column | None = None
    for item in expr.items:
        comparison = evaluate(
            ast.BinaryOp(ast.BinaryOperator.EQ, expr.operand, item), frame)
        result = comparison if result is None else _kleene_or(result,
                                                              comparison)
    if result is None:
        result = Column.constant(SqlType.BOOLEAN, False, frame.num_rows)
    if expr.negated:
        return _not(result)
    return result


def _case(expr: ast.Case, frame: Frame) -> Column:
    result_type = infer_type(expr, frame.fields)
    if result_type is SqlType.NULL:
        result_type = SqlType.FLOAT
    count = frame.num_rows
    out = Column.nulls(result_type, count)
    data = out.data.copy()
    mask = out.mask.copy()
    remaining = np.ones(count, dtype=np.bool_)

    for condition, branch in expr.whens:
        if expr.operand is not None:
            condition = ast.BinaryOp(ast.BinaryOperator.EQ, expr.operand,
                                     condition)
        taken = evaluate_predicate(condition, frame) & remaining
        if taken.any():
            value = evaluate(branch, frame).cast(result_type)
            data[taken] = value.data[taken]
            mask[taken] = value.mask[taken]
        remaining &= ~taken
    if expr.default is not None and remaining.any():
        value = evaluate(expr.default, frame).cast(result_type)
        data[remaining] = value.data[remaining]
        mask[remaining] = value.mask[remaining]
    return Column(result_type, data, mask)


# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------


def _call(expr: ast.FunctionCall, frame: Frame) -> Column:
    name = expr.name
    if name in ast.AGGREGATE_FUNCTIONS:
        raise ExecutionError(
            f"aggregate {name.upper()} cannot be evaluated as a scalar "
            "(it must be decomposed by the planner)")
    if name not in SCALAR_FUNCTIONS:
        raise BindError(f"unknown function: {name!r}")
    args = [evaluate(arg, frame) for arg in expr.args]
    handler = _SCALAR_HANDLERS.get(name)
    if handler is None:
        raise BindError(f"unknown function: {name!r}")
    return handler(args, frame.num_rows)


def _require_args(name: str, args: list[Column], count: int) -> None:
    if len(args) != count:
        raise TypeCheckError(
            f"{name.upper()} expects {count} argument(s), got {len(args)}")


def _numeric_common(args: list[Column]) -> SqlType:
    result = SqlType.NULL
    for arg in args:
        result = common_type(result, arg.sql_type)
    if result is SqlType.NULL:
        result = SqlType.FLOAT
    return result


def _fn_least(args: list[Column], count: int) -> Column:
    return _extreme(args, count, smallest=True)


def _fn_greatest(args: list[Column], count: int) -> Column:
    return _extreme(args, count, smallest=False)


def _extreme(args: list[Column], count: int, smallest: bool) -> Column:
    # PostgreSQL semantics: NULL arguments are ignored; result is NULL only
    # when every argument is NULL.
    if not args:
        raise TypeCheckError("LEAST/GREATEST need at least one argument")
    target = _numeric_common(args)
    args = [a.cast(target) for a in args]
    data = args[0].data.astype(target.numpy_dtype, copy=True)
    mask = args[0].mask.copy()
    for arg in args[1:]:
        take_other = arg.mask.copy()
        both = ~mask & ~arg.mask
        if smallest:
            better = np.zeros(count, dtype=np.bool_)
            better[both] = arg.data[both] < data[both]
        else:
            better = np.zeros(count, dtype=np.bool_)
            better[both] = arg.data[both] > data[both]
        replace = (mask & ~arg.mask) | better
        data[replace] = arg.data[replace]
        mask &= take_other
    return Column(target, data, mask)


def _fn_coalesce(args: list[Column], count: int) -> Column:
    if not args:
        raise TypeCheckError("COALESCE needs at least one argument")
    target = _numeric_common(args) if all(
        a.sql_type.is_numeric or a.sql_type is SqlType.NULL for a in args) \
        else args[0].sql_type
    args = [a.cast(target) for a in args]
    data = args[0].data.copy()
    mask = args[0].mask.copy()
    for arg in args[1:]:
        fill = mask & ~arg.mask
        data[fill] = arg.data[fill]
        mask &= arg.mask
    return Column(target, data, mask)


def _fn_nullif(args: list[Column], count: int) -> Column:
    _require_args("nullif", args, 2)
    first, second = args
    equal = Column(SqlType.BOOLEAN, first.equals(second),
                   np.zeros(count, dtype=np.bool_))
    mask = first.mask | equal.data
    return Column(first.sql_type, first.data.copy(), mask)


def _float_unary(fn: Callable[[np.ndarray], np.ndarray], domain=None):
    def handler(args: list[Column], count: int) -> Column:
        _require_args(fn.__name__, args, 1)
        arg = args[0].cast(SqlType.FLOAT)
        valid = ~arg.mask
        if domain is not None and valid.any() \
                and not domain(arg.data[valid]).all():
            raise ExecutionError(
                f"argument out of domain for {fn.__name__}")
        data = np.zeros(count, dtype=np.float64)
        if valid.any():
            data[valid] = fn(arg.data[valid])
        return Column(SqlType.FLOAT, data, arg.mask.copy())
    return handler


def _fn_round(args: list[Column], count: int) -> Column:
    if len(args) not in (1, 2):
        raise TypeCheckError("ROUND expects 1 or 2 arguments")
    value = args[0].cast(SqlType.FLOAT)
    digits = 0
    if len(args) == 2:
        if args[1].mask.any():
            raise ExecutionError("ROUND digit count must not be NULL")
        unique = np.unique(args[1].data)
        if len(unique) != 1:
            # Per-row digit counts: bulk-convert once, round per row
            # (Python round keeps the decimal semantics of the scalar
            # path; only the numpy indexing round-trips are gone).
            raw = value.data.tolist()
            digits_raw = args[1].data.tolist()
            nulls = value.mask.tolist()
            data = np.fromiter(
                (0.0 if null else round(float(v), int(d))
                 for v, d, null in zip(raw, digits_raw, nulls)),
                dtype=np.float64, count=count)
            return Column(SqlType.FLOAT, data, value.mask.copy())
        digits = int(unique[0])
    data = np.round(value.data, digits)
    return Column(SqlType.FLOAT, data, value.mask.copy())


def _fn_mod(args: list[Column], count: int) -> Column:
    _require_args("mod", args, 2)
    return _arithmetic(ast.BinaryOperator.MOD, args[0], args[1])


def _fn_power(args: list[Column], count: int) -> Column:
    _require_args("power", args, 2)
    base = args[0].cast(SqlType.FLOAT)
    exponent = args[1].cast(SqlType.FLOAT)
    mask = base.mask | exponent.mask
    data = np.zeros(count, dtype=np.float64)
    valid = ~mask
    if valid.any():
        data[valid] = np.power(base.data[valid], exponent.data[valid])
    return Column(SqlType.FLOAT, data, mask)


def _fn_abs(args: list[Column], count: int) -> Column:
    _require_args("abs", args, 1)
    arg = args[0]
    if not arg.sql_type.is_numeric and arg.sql_type is not SqlType.NULL:
        raise TypeCheckError("ABS requires a numeric argument")
    return Column(arg.sql_type, np.abs(arg.data), arg.mask.copy())


def _fn_sign(args: list[Column], count: int) -> Column:
    _require_args("sign", args, 1)
    arg = args[0].cast(SqlType.FLOAT)
    data = np.sign(arg.data).astype(np.int64)
    return Column(SqlType.INTEGER, data, arg.mask.copy())


def _text_unary(fn: Callable[[str], object], result_type: SqlType):
    def handler(args: list[Column], count: int) -> Column:
        _require_args("text function", args, 1)
        arg = args[0].cast(SqlType.TEXT)
        raw = arg.data.tolist()
        nulls = arg.mask.tolist()
        values = [None if null else fn(value)
                  for value, null in zip(raw, nulls)]
        return Column.from_values(result_type, values)
    return handler


def _fn_concat(args: list[Column], count: int) -> Column:
    # PostgreSQL CONCAT treats NULL as empty string.
    casts = [a.cast(SqlType.TEXT) for a in args]
    if not casts:
        return Column.from_values(SqlType.TEXT, [""] * count)
    columns = []
    for cast in casts:
        raw = cast.data.tolist()
        nulls = cast.mask.tolist()
        columns.append(["" if null else str(value)
                        for value, null in zip(raw, nulls)])
    values = ["".join(parts) for parts in zip(*columns)]
    return Column.from_values(SqlType.TEXT, values)


def _concat(left: Column, right: Column) -> Column:
    # `||` propagates NULL (unlike CONCAT).
    left = left.cast(SqlType.TEXT)
    right = right.cast(SqlType.TEXT)
    mask = left.mask | right.mask
    left_raw = left.data.tolist()
    right_raw = right.data.tolist()
    nulls = mask.tolist()
    values = [None if null else f"{a}{b}"
              for a, b, null in zip(left_raw, right_raw, nulls)]
    return Column.from_values(SqlType.TEXT, values)


def _like(value: Column, pattern: Column) -> Column:
    value = value.cast(SqlType.TEXT)
    pattern = pattern.cast(SqlType.TEXT)
    mask = value.mask | pattern.mask
    count = len(value)
    raw = value.data.tolist()
    pats = pattern.data.tolist()
    nulls = mask.tolist()
    compiled: dict[str, re.Pattern] = {}
    flags = []
    for text, pat, null in zip(raw, pats, nulls):
        if null:
            flags.append(False)
            continue
        rex = compiled.get(pat)
        if rex is None:
            rex = compiled[pat] = _like_regex(pat)
        flags.append(rex.fullmatch(text) is not None)
    data = np.array(flags, dtype=np.bool_) if flags else \
        np.zeros(0, dtype=np.bool_)
    return Column(SqlType.BOOLEAN, data, mask)


def _like_regex(pattern: str) -> re.Pattern:
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("".join(out), re.DOTALL)


_SCALAR_HANDLERS = {
    "least": _fn_least,
    "greatest": _fn_greatest,
    "coalesce": _fn_coalesce,
    "nullif": _fn_nullif,
    "abs": _fn_abs,
    "ceiling": _float_unary(np.ceil),
    "ceil": _float_unary(np.ceil),
    "floor": _float_unary(np.floor),
    "round": _fn_round,
    "sqrt": _float_unary(np.sqrt, domain=lambda x: x >= 0),
    "ln": _float_unary(np.log, domain=lambda x: x > 0),
    "exp": _float_unary(np.exp),
    "power": _fn_power,
    "mod": _fn_mod,
    "sign": _fn_sign,
    "length": _text_unary(len, SqlType.INTEGER),
    "upper": _text_unary(str.upper, SqlType.TEXT),
    "lower": _text_unary(str.lower, SqlType.TEXT),
    "concat": _fn_concat,
}
