"""Stored-procedure baseline (paper §VII-E)."""

from .language import (
    ExecuteSql,
    Loop,
    Procedure,
    ProcedureOp,
    ReturnQuery,
    iterative_procedure,
)
from .runner import CallReport, ProcedureCatalog

__all__ = [
    "ExecuteSql",
    "Loop",
    "Procedure",
    "ProcedureOp",
    "ReturnQuery",
    "iterative_procedure",
    "CallReport",
    "ProcedureCatalog",
]
