"""A minimal stored-procedure IR.

The paper's §VII-E baseline is "a procedure that executes R0 one time and
then a loop that executes Ri for 25 times".  This module models exactly
that class of procedure: straight-line SQL statements, counted loops, and
a final query returning the result.  The DBMS (our engine) treats each
statement as an isolated black box — no cross-statement optimization, no
rename, no common-result reuse — which is the paper's whole point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass
class ExecuteSql:
    """Run one SQL statement for its side effects."""

    sql: str


@dataclass
class Loop:
    """Run the body ``count`` times."""

    count: int
    body: list["ProcedureOp"]


@dataclass
class ReturnQuery:
    """Run a query and make its result the procedure's result."""

    sql: str


ProcedureOp = Union[ExecuteSql, Loop, ReturnQuery]


@dataclass
class Procedure:
    """A named stored procedure."""

    name: str
    ops: list[ProcedureOp] = field(default_factory=list)

    def statement_count(self) -> int:
        """Statements executed per call (loops expanded)."""

        def count(ops: list[ProcedureOp]) -> int:
            total = 0
            for op in ops:
                if isinstance(op, Loop):
                    total += op.count * count(op.body)
                else:
                    total += 1
            return total

        return count(self.ops)


def iterative_procedure(name: str, setup: list[str], init: str,
                        body: list[str], iterations: int,
                        final: str, teardown: list[str]) -> Procedure:
    """The §VII-E shape: setup DDL, R0 once, loop Ri N times, Qf."""
    ops: list[ProcedureOp] = [ExecuteSql(sql) for sql in setup]
    ops.append(ExecuteSql(init))
    ops.append(Loop(iterations, [ExecuteSql(sql) for sql in body]))
    ops.append(ReturnQuery(final))
    ops.extend(ExecuteSql(sql) for sql in teardown)
    return Procedure(name, ops)
