"""Stored-procedure execution.

The runner walks the procedure IR and submits each SQL statement to the
engine independently — the optimizer sees one statement at a time, exactly
as the paper describes the DBMS processing a procedure body (§I, §VII-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ReproError
from ..engine import Database, QueryResult
from .language import ExecuteSql, Loop, Procedure, ProcedureOp, ReturnQuery


@dataclass
class CallReport:
    """What one procedure call executed."""

    statements_executed: int = 0
    loops_entered: int = 0


class ProcedureCatalog:
    """Named procedures registered against one database."""

    def __init__(self, db: Database):
        self._db = db
        self._procedures: dict[str, Procedure] = {}
        self.last_report: Optional[CallReport] = None

    def register(self, procedure: Procedure) -> None:
        key = procedure.name.lower()
        if key in self._procedures:
            raise ReproError(f"procedure {procedure.name!r} already exists")
        self._procedures[key] = procedure

    def drop(self, name: str) -> None:
        self._procedures.pop(name.lower(), None)

    def names(self) -> list[str]:
        return sorted(self._procedures)

    def call(self, name: str) -> QueryResult:
        procedure = self._procedures.get(name.lower())
        if procedure is None:
            raise ReproError(f"no procedure named {name!r}")
        report = CallReport()
        result = self._run_ops(procedure.ops, report)
        self.last_report = report
        if result is None:
            return QueryResult()
        return result

    def _run_ops(self, ops: list[ProcedureOp],
                 report: CallReport) -> Optional[QueryResult]:
        result: Optional[QueryResult] = None
        for op in ops:
            if isinstance(op, ExecuteSql):
                self._db.execute(op.sql)
                report.statements_executed += 1
            elif isinstance(op, Loop):
                report.loops_entered += 1
                for _ in range(op.count):
                    inner = self._run_ops(op.body, report)
                    if inner is not None:
                        result = inner
            elif isinstance(op, ReturnQuery):
                result = self._db.execute(op.sql)
                report.statements_executed += 1
            else:
                raise ReproError(
                    f"unknown procedure op: {type(op).__name__}")
        return result
