"""Stored-procedure execution.

The runner walks the procedure IR and submits each SQL statement to the
engine independently — the optimizer sees one statement at a time, exactly
as the paper describes the DBMS processing a procedure body (§I, §VII-E).

With the database's ``enable_tracing`` option on, a call records a span
per executed statement under a ``procedure:<name>`` baseline span, and
every ``Loop`` op runs through the same :class:`~repro.runtime.LoopRun`
shell as the engine's loops (kind ``"procedure"``), so the Fig. 11
baseline appears in ``Database.trace_json()`` side by side with native
traces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from ..errors import ReproError
from ..engine import Database, QueryResult
from ..obs.telemetry import LoopTelemetry
from ..obs.trace import NULL_TRACER, Tracer
from ..runtime import LoopRun
from .language import ExecuteSql, Loop, Procedure, ProcedureOp, ReturnQuery


@dataclass
class CallReport:
    """What one procedure call executed."""

    statements_executed: int = 0
    loops_entered: int = 0


class ProcedureCatalog:
    """Named procedures registered against one database."""

    def __init__(self, db: Database):
        self._db = db
        self._procedures: dict[str, Procedure] = {}
        self.last_report: Optional[CallReport] = None
        # Per-iteration telemetry of the most recent call's loops.
        self.last_telemetry: list[LoopTelemetry] = []

    def register(self, procedure: Procedure) -> None:
        key = procedure.name.lower()
        if key in self._procedures:
            raise ReproError(f"procedure {procedure.name!r} already exists")
        self._procedures[key] = procedure

    def drop(self, name: str) -> None:
        self._procedures.pop(name.lower(), None)

    def names(self) -> list[str]:
        return sorted(self._procedures)

    def call(self, name: str) -> QueryResult:
        procedure = self._procedures.get(name.lower())
        if procedure is None:
            raise ReproError(f"no procedure named {name!r}")
        tracer = (Tracer() if self._db.options.enable_tracing
                  else NULL_TRACER)
        report = CallReport()
        telemetry: list[LoopTelemetry] = []
        stats_before = (self._db.stats.snapshot() if tracer.enabled
                        else None)
        with tracer.span(f"procedure:{procedure.name.lower()}",
                         kind="baseline"):
            result = self._run_ops(procedure.ops, report, tracer,
                                   telemetry, itertools.count())
        self.last_report = report
        self.last_telemetry = telemetry
        if tracer.enabled:
            self._db.publish_trace(
                tracer, loops=telemetry,
                metrics=self._db.stats.delta_since(stats_before))
        if result is None:
            return QueryResult()
        return result

    def _run_ops(self, ops: list[ProcedureOp], report: CallReport,
                 tracer, telemetry: list[LoopTelemetry],
                 loop_ids) -> Optional[QueryResult]:
        result: Optional[QueryResult] = None
        for op in ops:
            if isinstance(op, ExecuteSql):
                self._execute(op.sql, tracer)
                report.statements_executed += 1
            elif isinstance(op, Loop):
                report.loops_entered += 1
                loop_id = next(loop_ids)
                # The unified loop shell: same record and span shape as
                # the engine's loops, kind "procedure".
                run = LoopRun(loop_id, f"loop{loop_id}", "procedure",
                              tracer=tracer)
                run.begin()
                for trip in range(op.count):
                    statements_before = report.statements_executed
                    inner = self._run_ops(op.body, report, tracer,
                                          telemetry, loop_ids)
                    if inner is not None:
                        result = inner
                    run.finish_iteration(
                        trip + 1 < op.count,
                        delta_rows=0,
                        working_rows=(report.statements_executed
                                      - statements_before),
                        total_rows=0)
                run.close()
                telemetry.append(run.telemetry)
            elif isinstance(op, ReturnQuery):
                result = self._execute(op.sql, tracer)
                report.statements_executed += 1
            else:
                raise ReproError(
                    f"unknown procedure op: {type(op).__name__}")
        return result

    def _execute(self, sql: str, tracer) -> QueryResult:
        if tracer.enabled:
            with tracer.span("statement", kind="statement"):
                return self._db.execute(sql)
        return self._db.execute(sql)
