"""Synthetic datasets replacing the paper's SNAP graphs (see DESIGN.md)."""

from .generators import (
    DBLP_RATIO,
    POKEC_RATIO,
    WEB_GOOGLE_RATIO,
    GraphSpec,
    dblp_like,
    edge_list_stats,
    generate_edges,
    generate_vertex_status,
    pokec_like,
    web_google_like,
)
from .io import (
    load_delimited,
    load_edge_file,
    normalize_weights,
    read_snap_edge_list,
    write_snap_edge_list,
)
from .loader import fresh_database, load_graph

__all__ = [
    "DBLP_RATIO",
    "POKEC_RATIO",
    "WEB_GOOGLE_RATIO",
    "GraphSpec",
    "dblp_like",
    "edge_list_stats",
    "generate_edges",
    "generate_vertex_status",
    "pokec_like",
    "web_google_like",
    "fresh_database",
    "load_graph",
    "load_delimited",
    "load_edge_file",
    "normalize_weights",
    "read_snap_edge_list",
    "write_snap_edge_list",
]
