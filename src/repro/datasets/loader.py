"""Loading synthetic datasets into a Database."""

from __future__ import annotations

from ..engine import Database
from ..types import SqlType
from .generators import GraphSpec, generate_edges, generate_vertex_status


def load_graph(db: Database, spec: GraphSpec,
               with_vertex_status: bool = False,
               available_fraction: float = 0.8,
               edges_table: str = "edges",
               status_table: str = "vertexStatus") -> dict[str, int]:
    """Create and populate the paper's tables for one dataset.

    Returns row counts per table.  The edges table is
    ``(src INT, dst INT, weight FLOAT)`` exactly as §II assumes; weights
    are 1/outdegree so the PR query's SUM computes a proper random-walk
    step.
    """
    counts: dict[str, int] = {}
    edges = generate_edges(spec)
    db.create_table(edges_table, [("src", SqlType.INTEGER),
                                  ("dst", SqlType.INTEGER),
                                  ("weight", SqlType.FLOAT)])
    counts[edges_table] = db.load_rows(edges_table, edges)

    if with_vertex_status:
        status = generate_vertex_status(spec, available_fraction)
        db.create_table(status_table, [("node", SqlType.INTEGER),
                                       ("status", SqlType.INTEGER)])
        counts[status_table] = db.load_rows(status_table, status)
    return counts


def fresh_database(spec: GraphSpec, with_vertex_status: bool = False,
                   available_fraction: float = 0.8) -> Database:
    """A new Database pre-loaded with one synthetic graph."""
    db = Database()
    load_graph(db, spec, with_vertex_status, available_fraction)
    return db
