"""Dataset file IO: SNAP edge lists and delimited files.

The paper evaluates on SNAP graphs (DBLP, Pokec, web-Google).  We cannot
redistribute those, but anyone who downloads them can load the files
directly: :func:`read_snap_edge_list` parses the SNAP text format
(``#``-comment header, whitespace-separated ``FromNodeId ToNodeId``
pairs) and :func:`load_edge_file` puts the result into a Database with
the out-degree-normalized weights the PR query expects.

A small delimited-file loader covers CSV/TSV side tables (for example a
real vertex-status table).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Optional, Sequence

import numpy as np

from ..engine import Database
from ..errors import ReproError
from ..types import SqlType


def read_snap_edge_list(path: str | Path,
                        directed: bool = True
                        ) -> list[tuple[int, int]]:
    """Parse a SNAP-format edge list: ``# comments`` then ``src<TAB>dst``.

    Undirected SNAP files (e.g. DBLP collaboration) list each edge once;
    ``directed=False`` emits both directions, matching how the paper's
    queries traverse them.
    """
    edges: list[tuple[int, int]] = []
    path = Path(path)
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ReproError(
                    f"{path.name}:{line_number}: expected "
                    f"'src dst', got {line!r}")
            try:
                src, dst = int(parts[0]), int(parts[1])
            except ValueError as error:
                raise ReproError(
                    f"{path.name}:{line_number}: non-integer node id "
                    f"in {line!r}") from error
            edges.append((src, dst))
            if not directed and src != dst:
                edges.append((dst, src))
    return edges


def normalize_weights(edges: Sequence[tuple[int, int]]
                      ) -> list[tuple[int, int, float]]:
    """Attach weight = 1/outdegree(src) to every edge (the PR query's
    random-walk weighting)."""
    if not edges:
        return []
    sources = np.array([e[0] for e in edges], dtype=np.int64)
    unique, inverse = np.unique(sources, return_inverse=True)
    outdegree = np.bincount(inverse)
    weights = 1.0 / outdegree[inverse]
    return [(int(s), int(d), float(w))
            for (s, d), w in zip(edges, weights)]


def load_edge_file(db: Database, path: str | Path,
                   table: str = "edges", directed: bool = True,
                   weighted_by_outdegree: bool = True) -> int:
    """Create and fill the paper's ``edges`` table from a SNAP file.

    Returns the number of edges loaded.
    """
    pairs = read_snap_edge_list(path, directed=directed)
    if weighted_by_outdegree:
        rows = normalize_weights(pairs)
    else:
        rows = [(s, d, 1.0) for s, d in pairs]
    db.create_table(table, [("src", SqlType.INTEGER),
                            ("dst", SqlType.INTEGER),
                            ("weight", SqlType.FLOAT)])
    return db.load_rows(table, rows)


def write_snap_edge_list(edges: Iterable[tuple[int, int, float]],
                         path: str | Path,
                         comment: Optional[str] = None) -> int:
    """Write (src, dst[, weight]) edges in SNAP format (weights dropped).

    Lets the synthetic generators feed external tools; returns the number
    of edges written.
    """
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        if comment:
            for line in comment.splitlines():
                handle.write(f"# {line}\n")
        handle.write("# FromNodeId\tToNodeId\n")
        for edge in edges:
            handle.write(f"{edge[0]}\t{edge[1]}\n")
            count += 1
    return count


_TYPE_PARSERS = {
    SqlType.INTEGER: int,
    SqlType.FLOAT: float,
    SqlType.NUMERIC: float,
    SqlType.TEXT: str,
    SqlType.BOOLEAN: lambda v: v.strip().lower() in ("1", "t", "true"),
}


def load_delimited(db: Database, path: str | Path, table: str,
                   columns: Sequence[tuple[str, SqlType]],
                   delimiter: str = ",", header: bool = True,
                   null_token: str = "") -> int:
    """Load a CSV/TSV file into a new table with the given schema.

    Empty fields (or ``null_token``) become NULL.  Returns rows loaded.
    """
    parsers = [_TYPE_PARSERS[sql_type] for _, sql_type in columns]
    rows = []
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for line_number, record in enumerate(reader, start=1):
            if header and line_number == 1:
                continue
            if not record:
                continue
            if len(record) != len(columns):
                raise ReproError(
                    f"{path.name}:{line_number}: expected "
                    f"{len(columns)} fields, got {len(record)}")
            row = []
            for value, parser in zip(record, parsers):
                if value == null_token:
                    row.append(None)
                    continue
                try:
                    row.append(parser(value))
                except ValueError as error:
                    raise ReproError(
                        f"{path.name}:{line_number}: cannot parse "
                        f"{value!r}") from error
            rows.append(tuple(row))
    db.create_table(table, columns)
    return db.load_rows(table, rows)
