"""Synthetic graph datasets standing in for the paper's SNAP graphs.

The paper evaluates on DBLP (317,080 nodes / 1,049,866 edges ≈ 3.3
edges/node), Pokec (1,632,803 / 30,622,564 ≈ 18.8 edges/node) and the
Google web graph.  We cannot ship those, so the generators below produce
power-law-ish graphs with the same *edge-to-node ratio* at configurable
scale.  The ratio is what the optimizations are sensitive to — §VII-C
explains the DBLP/Pokec difference in Fig. 9 through the relative size of
``vertexStatus`` (∝ nodes) versus the join work (∝ edges).

All generators are deterministic given a seed.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

import numpy as np


@dataclasses.dataclass(frozen=True)
class GraphSpec:
    """Shape parameters for a synthetic graph."""

    name: str
    nodes: int
    edges_per_node: float
    seed: int = 7

    @property
    def edges(self) -> int:
        return int(self.nodes * self.edges_per_node)


# The paper's three datasets, at the paper's edge/node ratios.  ``scale``
# in the factory functions divides node counts to fit a laptop run.
DBLP_RATIO = 1_049_866 / 317_080        # ≈ 3.31
POKEC_RATIO = 30_622_564 / 1_632_803    # ≈ 18.75
WEB_GOOGLE_RATIO = 5_105_039 / 875_713  # ≈ 5.83


def dblp_like(nodes: int = 4_000, seed: int = 7) -> GraphSpec:
    """A DBLP-shaped graph: sparse collaboration-network ratio."""
    return GraphSpec("dblp-like", nodes, DBLP_RATIO, seed)


def pokec_like(nodes: int = 2_000, seed: int = 11) -> GraphSpec:
    """A Pokec-shaped graph: dense social-network ratio."""
    return GraphSpec("pokec-like", nodes, POKEC_RATIO, seed)


def web_google_like(nodes: int = 3_000, seed: int = 13) -> GraphSpec:
    """A web-graph-shaped dataset (Google web crawl ratio)."""
    return GraphSpec("web-google-like", nodes, WEB_GOOGLE_RATIO, seed)


def generate_edges(spec: GraphSpec,
                   weighted_by_outdegree: bool = True
                   ) -> list[tuple[int, int, float]]:
    """Directed edges (src, dst, weight) with a heavy-tailed out-degree.

    Destination choice follows a Zipf-like preferential attachment so the
    in-degree is also skewed, as in real social/web graphs.  When
    ``weighted_by_outdegree`` is set, weight = 1/outdegree(src) — the
    transition-matrix weighting the paper's PR query expects.
    """
    rng = np.random.default_rng(spec.seed)
    n = spec.nodes
    # The connectivity chain below contributes n edges; draw the rest at
    # random so the total honours the spec's edge/node ratio.  Oversample
    # slightly to compensate for duplicate-edge removal.
    m = max(int((spec.edges - n) * 1.08), 0)

    # Heavy-tailed target popularity: rank r gets probability ∝ 1/(r+1).
    ranks = np.arange(n, dtype=np.float64)
    popularity = 1.0 / (ranks + 1.0)
    popularity /= popularity.sum()
    # Shuffle so node id does not encode popularity.
    permutation = rng.permutation(n)

    sources = rng.integers(0, n, size=m, endpoint=False)
    targets = permutation[rng.choice(n, size=m, p=popularity)]

    # Drop self loops and duplicate edges.
    keep = sources != targets
    sources, targets = sources[keep], targets[keep]
    pair_codes = sources.astype(np.int64) * n + targets
    _, unique_index = np.unique(pair_codes, return_index=True)
    unique_index = np.sort(unique_index)
    sources, targets = sources[unique_index], targets[unique_index]

    # Guarantee weak connectivity of node ids: chain every node once.
    chain_src = np.arange(n, dtype=np.int64)
    chain_dst = np.roll(chain_src, -1)
    sources = np.concatenate([sources, chain_src])
    targets = np.concatenate([targets, chain_dst])
    pair_codes = sources * np.int64(n) + targets
    _, unique_index = np.unique(pair_codes, return_index=True)
    unique_index = np.sort(unique_index)
    sources, targets = sources[unique_index], targets[unique_index]

    if weighted_by_outdegree:
        outdegree = np.bincount(sources, minlength=n)
        weights = 1.0 / outdegree[sources]
    else:
        weights = rng.uniform(0.1, 2.0, size=len(sources))

    return [(int(s), int(t), float(w))
            for s, t, w in zip(sources, targets, weights)]


def generate_vertex_status(spec: GraphSpec,
                           available_fraction: float = 0.8
                           ) -> list[tuple[int, int]]:
    """The <node, status> availability table of the PR-VS query (§V-A).

    One row per node; ``status`` is 1 (available) for roughly
    ``available_fraction`` of nodes and 0 otherwise.
    """
    rng = np.random.default_rng(spec.seed + 1)
    status = (rng.uniform(size=spec.nodes) < available_fraction)
    return [(i, int(flag)) for i, flag in enumerate(status)]


def edge_list_stats(edges: list[tuple[int, int, float]]) -> dict[str, float]:
    """Quick shape summary used by tests and example scripts."""
    sources = np.array([e[0] for e in edges])
    targets = np.array([e[1] for e in edges])
    nodes = np.union1d(sources, targets)
    out_degrees = np.bincount(sources, minlength=int(nodes.max()) + 1)
    return {
        "nodes": int(len(nodes)),
        "edges": int(len(edges)),
        "edges_per_node": len(edges) / len(nodes),
        "max_out_degree": int(out_degrees.max()),
    }
